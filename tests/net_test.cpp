//===- tests/net_test.cpp - Network front-door tests ----------------------===//
//
// The net/ subsystem: wire-codec units (round-trips, truncation,
// hostile frames, randomized fuzz — the decoder must fail closed and
// never over-consume), the minimal HTTP parser, and loopback
// end-to-end tests against a real Server over a real Service:
// request/response round-trips, pipelining with out-of-order ids,
// /healthz and /stats, protocol-error handling, admission-control
// shedding, half-close, and the graceful drain. Labelled `net` in
// ctest and expected to be clean under -DRML_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "net/Http.h"
#include "net/Latency.h"
#include "net/Protocol.h"
#include "net/Server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <random>
#include <set>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace rml;
using namespace rml::net;

namespace {

//===----------------------------------------------------------------------===//
// Codec units.
//===----------------------------------------------------------------------===//

WireRequest sampleRequest() {
  WireRequest R;
  R.Id = 0x0123456789ABCDEFull;
  R.Kind = MsgKind::SchemeQuery;
  R.Source = "fun id x = x\n;id 7";
  R.SchemeNames = {"id", "missing"};
  return R;
}

WireResponse sampleResponse() {
  WireResponse R;
  R.Id = 42;
  R.Status = WireStatus::Ok;
  R.CompileOk = true;
  R.CacheHit = true;
  R.Ran = true;
  R.Result = "7";
  R.Error = "";
  R.Schemes = {{"id", "forall 'a r1 r2 . ('a, r1) -> ('a, r2)"},
               {"missing", ""}};
  return R;
}

TEST(NetProtocol, RequestRoundTrip) {
  WireRequest In = sampleRequest();
  std::string Wire;
  encodeRequest(In, Wire);
  ASSERT_GE(Wire.size(), 4u);
  // MaxBodyBytes < 2^24 keeps byte 0 zero — the dialect sniff depends
  // on this.
  EXPECT_EQ(Wire[0], '\0');

  WireRequest Out;
  std::string Err;
  size_t Consumed = 0;
  ASSERT_EQ(decodeRequest(Wire, Consumed, Out, Err), Decode::Frame) << Err;
  EXPECT_EQ(Consumed, Wire.size());
  EXPECT_EQ(Out.Id, In.Id);
  EXPECT_EQ(Out.Kind, In.Kind);
  EXPECT_EQ(Out.Source, In.Source);
  EXPECT_EQ(Out.SchemeNames, In.SchemeNames);
}

TEST(NetProtocol, ResponseRoundTrip) {
  WireResponse In = sampleResponse();
  std::string Wire;
  encodeResponse(In, Wire);

  WireResponse Out;
  std::string Err;
  size_t Consumed = 0;
  ASSERT_EQ(decodeResponse(Wire, Consumed, Out, Err), Decode::Frame) << Err;
  EXPECT_EQ(Consumed, Wire.size());
  EXPECT_EQ(Out.Id, In.Id);
  EXPECT_EQ(Out.Status, In.Status);
  EXPECT_TRUE(Out.CompileOk);
  EXPECT_TRUE(Out.CacheHit);
  EXPECT_TRUE(Out.Ran);
  EXPECT_EQ(Out.Result, In.Result);
  EXPECT_EQ(Out.Schemes, In.Schemes);
}

TEST(NetProtocol, TenantAndDeadlineRoundTrip) {
  // Requests that carry the optional tenant / deadline fields flag
  // them on the wire and round-trip exactly; requests that omit them
  // decode to the defaults (empty tenant, no deadline).
  WireRequest In = sampleRequest();
  In.Tenant = "team-a";
  In.DeadlineNanos = 123456789;
  std::string Wire;
  encodeRequest(In, Wire);

  WireRequest Out;
  std::string Err;
  size_t Consumed = 0;
  ASSERT_EQ(decodeRequest(Wire, Consumed, Out, Err), Decode::Frame) << Err;
  EXPECT_EQ(Consumed, Wire.size());
  EXPECT_EQ(Out.Tenant, "team-a");
  EXPECT_EQ(Out.DeadlineNanos, 123456789u);
  EXPECT_EQ(Out.Source, In.Source);
  EXPECT_EQ(Out.SchemeNames, In.SchemeNames);

  WireRequest Plain = sampleRequest();
  std::string PlainWire;
  encodeRequest(Plain, PlainWire);
  // The optional fields cost nothing when absent.
  EXPECT_LT(PlainWire.size(), Wire.size());
  WireRequest PlainOut;
  ASSERT_EQ(decodeRequest(PlainWire, Consumed, PlainOut, Err), Decode::Frame)
      << Err;
  EXPECT_TRUE(PlainOut.Tenant.empty());
  EXPECT_EQ(PlainOut.DeadlineNanos, 0u);
}

TEST(NetProtocol, PipelinedFramesDecodeInSequence) {
  std::string Wire;
  for (uint64_t I = 0; I < 5; ++I) {
    WireRequest R;
    R.Id = I;
    R.Kind = MsgKind::CompileRun;
    R.Source = "1 + " + std::to_string(I);
    encodeRequest(R, Wire);
  }
  size_t Used = 0;
  for (uint64_t I = 0; I < 5; ++I) {
    WireRequest Out;
    std::string Err;
    size_t Consumed = 0;
    ASSERT_EQ(decodeRequest(std::string_view(Wire).substr(Used), Consumed,
                            Out, Err),
              Decode::Frame)
        << Err;
    EXPECT_EQ(Out.Id, I);
    Used += Consumed;
  }
  EXPECT_EQ(Used, Wire.size());
}

TEST(NetProtocol, EveryTruncationIsNeedMoreNeverARead) {
  // Fail-closed rule 1: an incomplete frame is NeedMore — for every
  // prefix length, with nothing consumed and nothing fabricated.
  WireRequest In = sampleRequest();
  std::string Wire;
  encodeRequest(In, Wire);
  for (size_t Len = 0; Len < Wire.size(); ++Len) {
    WireRequest Out;
    std::string Err;
    size_t Consumed = 1; // must be reset by the decoder
    EXPECT_EQ(decodeRequest(std::string_view(Wire).substr(0, Len), Consumed,
                            Out, Err),
              Decode::NeedMore)
        << "prefix " << Len;
    EXPECT_EQ(Consumed, 0u);
  }
}

TEST(NetProtocol, OversizedLengthPrefixFailsClosedImmediately) {
  // 0x00900000 = 9 MiB > MaxBodyBytes: rejected from the prefix alone,
  // not after buffering 9 MiB that can never parse.
  std::string Wire = {'\x00', '\x90', '\x00', '\x00'};
  WireRequest Out;
  std::string Err;
  size_t Consumed = 0;
  EXPECT_EQ(decodeRequest(Wire, Consumed, Out, Err), Decode::Bad);
  EXPECT_EQ(Consumed, 0u);
  EXPECT_NE(Err.find("exceeds"), std::string::npos) << Err;

  WireResponse RespOut;
  EXPECT_EQ(decodeResponse(Wire, Consumed, RespOut, Err), Decode::Bad);
}

TEST(NetProtocol, GarbageBodyFailsClosed) {
  // A plausible length prefix followed by noise: the inner structure
  // cannot parse and the decoder says Bad without consuming.
  std::string Wire = {'\x00', '\x00', '\x00', '\x08'};
  Wire += "garbage!";
  WireRequest Out;
  std::string Err;
  size_t Consumed = 0;
  EXPECT_EQ(decodeRequest(Wire, Consumed, Out, Err), Decode::Bad);
  EXPECT_EQ(Consumed, 0u);
}

TEST(NetProtocol, UnknownKindStatusAndFlagBitsAreRejected) {
  WireRequest Req = sampleRequest();
  std::string Wire;
  encodeRequest(Req, Wire);
  Wire[4 + 8] = '\x04'; // kind byte: 4 (past CaptureQuery) is out of range
  WireRequest Out;
  std::string Err;
  size_t Consumed = 0;
  EXPECT_EQ(decodeRequest(Wire, Consumed, Out, Err), Decode::Bad);
  EXPECT_NE(Err.find("kind"), std::string::npos) << Err;

  std::string BadReqFlags;
  encodeRequest(Req, BadReqFlags);
  BadReqFlags[4 + 9] = '\x04'; // request flag bits beyond Tenant|Deadline
  EXPECT_EQ(decodeRequest(BadReqFlags, Consumed, Out, Err), Decode::Bad);
  EXPECT_NE(Err.find("flag"), std::string::npos) << Err;

  WireResponse Resp = sampleResponse();
  std::string RWire;
  encodeResponse(Resp, RWire);
  std::string BadStatus = RWire;
  BadStatus[4 + 8] = '\x08'; // status byte: 8 is out of range
  WireResponse ROut;
  EXPECT_EQ(decodeResponse(BadStatus, Consumed, ROut, Err), Decode::Bad);

  std::string BadFlags = RWire;
  BadFlags[4 + 9] = '\x7F'; // flag bits beyond 0x7
  EXPECT_EQ(decodeResponse(BadFlags, Consumed, ROut, Err), Decode::Bad);
  EXPECT_NE(Err.find("flag"), std::string::npos) << Err;
}

TEST(NetProtocol, InnerLengthOverrunAndTrailingBytesAreRejected) {
  // Source length pointing past the body end must not read past it.
  WireRequest Req;
  Req.Id = 1;
  Req.Source = "abc";
  std::string Wire;
  encodeRequest(Req, Wire);
  std::string Overrun = Wire;
  Overrun[4 + 8 + 1 + 1 + 3] = '\x09'; // srcLen 3 -> 9, beyond the body
  WireRequest Out;
  std::string Err;
  size_t Consumed = 0;
  EXPECT_EQ(decodeRequest(Overrun, Consumed, Out, Err), Decode::Bad);
  EXPECT_NE(Err.find("overrun"), std::string::npos) << Err;

  // A frame whose declared body exceeds its parsed content is format
  // drift; fail closed rather than silently skipping bytes.
  std::string Trailing = Wire;
  Trailing += '\x00';
  Trailing[3] = static_cast<char>(static_cast<uint8_t>(Trailing[3]) + 1);
  EXPECT_EQ(decodeRequest(Trailing, Consumed, Out, Err), Decode::Bad);
  EXPECT_NE(Err.find("trailing"), std::string::npos) << Err;
}

TEST(NetProtocol, SchemeNameCountBoundIsEnforced) {
  // Build a request frame claiming MaxSchemeNames + 1 names by hand.
  std::string Body;
  for (int I = 0; I < 8; ++I)
    Body += '\x00'; // id
  Body += '\x02';   // SchemeQuery
  Body += '\x00';   // flags: none
  Body += std::string(4, '\x00'); // srcLen 0
  uint16_t N = MaxSchemeNames + 1;
  Body += static_cast<char>(N >> 8);
  Body += static_cast<char>(N & 0xFF);
  std::string Wire(4, '\x00');
  Wire[3] = static_cast<char>(Body.size());
  Wire += Body;
  WireRequest Out;
  std::string Err;
  size_t Consumed = 0;
  EXPECT_EQ(decodeRequest(Wire, Consumed, Out, Err), Decode::Bad);
  EXPECT_NE(Err.find("bound"), std::string::npos) << Err;
}

TEST(NetProtocol, FuzzNeverCrashesNeverOverConsumes) {
  // Randomized mutations of valid frames plus pure noise. The only
  // contract: decode returns one of the three values, never consumes
  // more than the buffer (or anything at all off a non-Frame), and
  // never reads out of bounds (the sanitizer builds would catch it).
  std::mt19937_64 Rng(0xE15BA9u); // fixed seed: reproducible failures
  std::string Valid;
  encodeRequest(sampleRequest(), Valid);
  encodeResponse(sampleResponse(), Valid);
  for (int Round = 0; Round < 3000; ++Round) {
    std::string Buf;
    if (Round % 3 == 0) {
      // Pure noise.
      size_t Len = Rng() % 64;
      for (size_t I = 0; I < Len; ++I)
        Buf += static_cast<char>(Rng());
    } else {
      // A valid pair of frames with a handful of byte flips.
      Buf = Valid;
      unsigned Flips = 1 + Rng() % 5;
      for (unsigned I = 0; I < Flips; ++I)
        Buf[Rng() % Buf.size()] = static_cast<char>(Rng());
      if (Rng() % 4 == 0)
        Buf.resize(Rng() % (Buf.size() + 1)); // also truncate
    }
    WireRequest Req;
    WireResponse Resp;
    std::string Err;
    size_t Consumed = 0;
    Decode D = decodeRequest(Buf, Consumed, Req, Err);
    EXPECT_LE(Consumed, Buf.size());
    if (D != Decode::Frame) {
      EXPECT_EQ(Consumed, 0u);
    }
    D = decodeResponse(Buf, Consumed, Resp, Err);
    EXPECT_LE(Consumed, Buf.size());
    if (D != Decode::Frame) {
      EXPECT_EQ(Consumed, 0u);
    }
  }
}

//===----------------------------------------------------------------------===//
// Open-loop latency accounting (bench_traffic's accumulator).
//===----------------------------------------------------------------------===//

TEST(NetLatency, RecordsFromTheScheduledArrival) {
  LatencyAccumulator L;
  // 100ns scheduled, 350ns received: 250ns of latency — including any
  // sender lag between the scheduled and actual send.
  EXPECT_EQ(L.record(/*ScheduledNanos=*/100, /*RecvNanos=*/350), 250u);
  EXPECT_EQ(L.count(), 1u);
  EXPECT_EQ(L.clamped(), 0u);
}

TEST(NetLatency, InvertedPairsClampToZeroAndAreCounted) {
  // The regression this type exists for: an inverted timestamp pair
  // must clamp to a zero sample — not wrap to ~2^64 ns (which would
  // wreck every percentile above it) and not vanish from the
  // population (which would skew the distribution the other way).
  LatencyAccumulator L;
  EXPECT_EQ(L.record(/*ScheduledNanos=*/500, /*RecvNanos=*/200), 0u);
  EXPECT_EQ(L.record(1'000'000, 999'999), 0u);
  EXPECT_EQ(L.record(100, 100), 0u); // equal is fine, not a clamp
  EXPECT_EQ(L.count(), 3u);
  EXPECT_EQ(L.clamped(), 2u);

  // The clamped samples stay in the population: with one real 8ms
  // sample among them, the median is a clamp, not 8ms.
  L.record(0, 8'000'000);
  L.finalize();
  EXPECT_EQ(L.percentileMs(0.50), 0.0);
  EXPECT_EQ(L.percentileMs(0.99), 8.0);
}

TEST(NetLatency, PercentilesOverASortedPopulation) {
  LatencyAccumulator L;
  // 1ms..100ms inserted in reverse order; finalize() sorts.
  for (uint64_t I = 100; I >= 1; --I)
    L.record(0, I * 1'000'000);
  EXPECT_EQ(L.finalize().front(), 1'000'000u);
  EXPECT_EQ(L.count(), 100u);
  EXPECT_EQ(L.clamped(), 0u);
  EXPECT_DOUBLE_EQ(L.percentileMs(0.50), 51.0);
  EXPECT_DOUBLE_EQ(L.percentileMs(0.95), 96.0);
  EXPECT_DOUBLE_EQ(L.percentileMs(0.99), 100.0);
  EXPECT_DOUBLE_EQ(L.percentileMs(1.0), 100.0); // clamped to the max
}

TEST(NetLatency, EmptyAccumulatorReportsZeroes) {
  LatencyAccumulator L;
  EXPECT_EQ(L.count(), 0u);
  EXPECT_EQ(L.clamped(), 0u);
  EXPECT_TRUE(L.finalize().empty());
  EXPECT_EQ(L.percentileMs(0.99), 0.0);
}

//===----------------------------------------------------------------------===//
// HTTP parser units.
//===----------------------------------------------------------------------===//

TEST(NetHttp, ParsesAMinimalGet) {
  std::string Buf = "GET /stats HTTP/1.1\r\nHost: x\r\n\r\ntrailing";
  HttpRequest Out;
  std::string Err;
  size_t Consumed = 0;
  ASSERT_EQ(parseHttpRequest(Buf, Consumed, Out, Err), Decode::Frame) << Err;
  EXPECT_EQ(Out.Method, "GET");
  EXPECT_EQ(Out.Target, "/stats");
  EXPECT_EQ(Consumed, Buf.size() - 8); // everything through the blank line
}

TEST(NetHttp, IncompleteHeaderBlockNeedsMore) {
  std::string Buf = "GET /healthz HTTP/1.1\r\nHost: x\r\n";
  HttpRequest Out;
  std::string Err;
  size_t Consumed = 0;
  EXPECT_EQ(parseHttpRequest(Buf, Consumed, Out, Err), Decode::NeedMore);
  EXPECT_EQ(Consumed, 0u);
}

TEST(NetHttp, BadRequestLineFailsAsSoonAsItIsComplete) {
  // No waiting for the full header block: binary-ish garbage that
  // reached the HTTP path dies at the first CRLF.
  for (const char *Bad :
       {"NONSENSE\r\n", "GET missing-slash HTTP/1.1\r\n",
        "get /lower HTTP/1.1\r\n", "GET /x HTTP/2.0\r\n",
        "GET /x HTTP/1.1 extra\r\n", "\x01\x02\x03\r\n"}) {
    HttpRequest Out;
    std::string Err;
    size_t Consumed = 0;
    EXPECT_EQ(parseHttpRequest(Bad, Consumed, Out, Err), Decode::Bad) << Bad;
    EXPECT_EQ(Consumed, 0u);
  }
}

TEST(NetHttp, OversizedHeaderBlockFailsClosed) {
  std::string Buf = "GET / HTTP/1.1\r\n";
  Buf += std::string(MaxHttpHeaderBytes + 16, 'a'); // no blank line ever
  HttpRequest Out;
  std::string Err;
  size_t Consumed = 0;
  EXPECT_EQ(parseHttpRequest(Buf, Consumed, Out, Err), Decode::Bad);
}

//===----------------------------------------------------------------------===//
// End-to-end over loopback: a real Server over a real Service.
//===----------------------------------------------------------------------===//

/// The service_test workhorse program (see there for why this shape).
const char *ComposeProgram = R"(
fun compose fg = fn x => #1 fg (#2 fg x)
fun iter n acc =
  if n = 0 then acc
  else let val h = compose (fn x => x + 1, fn x => x * 2)
       in iter (n - 1) acc + h n - h n end
;iter 600 21
)";

service::ServiceConfig smallConfig() {
  service::ServiceConfig Cfg;
  Cfg.Workers = 2;
  Cfg.QueueCapacity = 32;
  return Cfg;
}

/// A Service + Server pair with the loop on its own thread; the
/// destructor drains and joins.
struct ServerFixture {
  service::Service Svc;
  Server Srv;
  std::thread LoopThread;

  explicit ServerFixture(service::ServiceConfig SC = smallConfig(),
                         ServerConfig NC = ServerConfig())
      : Svc(SC), Srv(Svc, NC) {
    EXPECT_TRUE(Srv.ok()) << Srv.error();
    LoopThread = std::thread([this] { Srv.run(); });
  }

  ~ServerFixture() { drain(); }

  void drain() {
    if (LoopThread.joinable()) {
      Srv.requestDrain();
      LoopThread.join();
    }
    Svc.shutdown();
  }
};

/// A blocking loopback client with a receive timeout, so a server bug
/// fails the test instead of hanging the suite.
struct TestClient {
  int Fd = -1;
  std::string Buf;

  explicit TestClient(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(Fd, 0);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    EXPECT_EQ(
        ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0)
        << std::strerror(errno);
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    timeval Tv{};
    Tv.tv_sec = 30;
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  }

  ~TestClient() {
    if (Fd >= 0)
      ::close(Fd);
  }

  void send(const std::string &Bytes) {
    size_t Off = 0;
    while (Off < Bytes.size()) {
      ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                         MSG_NOSIGNAL);
      ASSERT_GT(N, 0) << std::strerror(errno);
      Off += static_cast<size_t>(N);
    }
  }

  void sendRequest(const WireRequest &R) {
    std::string Wire;
    encodeRequest(R, Wire);
    send(Wire);
  }

  /// Reads until one full response frame decodes; fails the test on
  /// EOF, timeout or a malformed frame.
  WireResponse recvResponse() {
    WireResponse Out;
    for (;;) {
      std::string Err;
      size_t Consumed = 0;
      Decode D = decodeResponse(Buf, Consumed, Out, Err);
      if (D == Decode::Frame) {
        Buf.erase(0, Consumed);
        return Out;
      }
      EXPECT_EQ(D, Decode::NeedMore) << Err;
      if (D != Decode::NeedMore)
        return Out;
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      EXPECT_GT(N, 0) << (N == 0 ? "EOF" : std::strerror(errno));
      if (N <= 0)
        return Out;
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

  /// Reads exactly one HTTP response, delimited by its Content-Length
  /// (keep-alive connections never close, so EOF framing cannot work).
  std::string recvHttpResponse() {
    for (;;) {
      size_t End = Buf.find("\r\n\r\n");
      if (End != std::string::npos) {
        size_t Cl = Buf.find("Content-Length: ");
        EXPECT_NE(Cl, std::string::npos) << Buf;
        if (Cl == std::string::npos)
          return std::string();
        size_t BodyLen = std::strtoul(Buf.c_str() + Cl + 16, nullptr, 10);
        size_t Total = End + 4 + BodyLen;
        if (Buf.size() >= Total) {
          std::string Out = Buf.substr(0, Total);
          Buf.erase(0, Total);
          return Out;
        }
      }
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      EXPECT_GT(N, 0) << (N == 0 ? "EOF" : std::strerror(errno));
      if (N <= 0)
        return std::string();
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

  /// Reads to EOF (close-mode HTTP responses end the connection).
  std::string recvAll() {
    std::string Out = std::move(Buf);
    Buf.clear();
    char Chunk[4096];
    for (;;) {
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        return Out;
      Out.append(Chunk, static_cast<size_t>(N));
    }
  }

  bool atEof() {
    char C;
    return ::recv(Fd, &C, 1, 0) == 0;
  }
};

TEST(NetServer, CompileRunRoundTrip) {
  ServerFixture F;
  TestClient C(F.Srv.port());
  WireRequest Req;
  Req.Id = 7;
  Req.Kind = MsgKind::CompileRun;
  Req.Source = "1 + 2";
  C.sendRequest(Req);
  WireResponse Resp = C.recvResponse();
  EXPECT_EQ(Resp.Id, 7u);
  EXPECT_EQ(Resp.Status, WireStatus::Ok);
  EXPECT_TRUE(Resp.CompileOk);
  EXPECT_TRUE(Resp.Ran);
  EXPECT_EQ(Resp.Result, "3");
}

TEST(NetServer, CompileOnlyDoesNotRun) {
  ServerFixture F;
  TestClient C(F.Srv.port());
  WireRequest Req;
  Req.Id = 1;
  Req.Kind = MsgKind::Compile;
  Req.Source = ComposeProgram;
  C.sendRequest(Req);
  WireResponse Resp = C.recvResponse();
  EXPECT_EQ(Resp.Status, WireStatus::Ok);
  EXPECT_TRUE(Resp.CompileOk);
  EXPECT_FALSE(Resp.Ran);
  EXPECT_TRUE(Resp.Result.empty());
}

TEST(NetServer, CompileErrorIsReportedOnTheWire) {
  ServerFixture F;
  TestClient C(F.Srv.port());
  WireRequest Req;
  Req.Id = 2;
  Req.Kind = MsgKind::CompileRun;
  Req.Source = "1 + true"; // ill-typed
  C.sendRequest(Req);
  WireResponse Resp = C.recvResponse();
  EXPECT_EQ(Resp.Status, WireStatus::CompileError);
  EXPECT_FALSE(Resp.CompileOk);
  EXPECT_FALSE(Resp.Error.empty());
}

TEST(NetServer, SchemeQueryRendersRegionTypeSchemes) {
  ServerFixture F;
  TestClient C(F.Srv.port());
  WireRequest Req;
  Req.Id = 3;
  Req.Kind = MsgKind::SchemeQuery;
  Req.Source = ComposeProgram;
  Req.SchemeNames = {"compose", "no_such_name"};
  C.sendRequest(Req);
  WireResponse Resp = C.recvResponse();
  EXPECT_EQ(Resp.Status, WireStatus::Ok);
  ASSERT_EQ(Resp.Schemes.size(), 2u);
  EXPECT_EQ(Resp.Schemes[0].first, "compose");
  EXPECT_FALSE(Resp.Schemes[0].second.empty());
  EXPECT_EQ(Resp.Schemes[1].first, "no_such_name");
  EXPECT_TRUE(Resp.Schemes[1].second.empty());
}

TEST(NetServer, PipelinedRequestsMatchResponsesById) {
  ServerFixture F;
  TestClient C(F.Srv.port());
  // One write carrying several frames; completions may come back in
  // any order (two workers), so match by echoed id.
  std::string Wire;
  constexpr uint64_t N = 8;
  for (uint64_t I = 0; I < N; ++I) {
    WireRequest Req;
    Req.Id = 100 + I;
    Req.Kind = MsgKind::CompileRun;
    Req.Source = "1 + " + std::to_string(I);
    encodeRequest(Req, Wire);
  }
  C.send(Wire);
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I < N; ++I) {
    WireResponse Resp = C.recvResponse();
    EXPECT_EQ(Resp.Status, WireStatus::Ok);
    uint64_t K = Resp.Id - 100;
    ASSERT_LT(K, N);
    EXPECT_EQ(Resp.Result, std::to_string(1 + K));
    Seen.insert(Resp.Id);
  }
  EXPECT_EQ(Seen.size(), N);
}

TEST(NetServer, HttpHealthzStatsAnd404) {
  ServerFixture F;
  {
    TestClient C(F.Srv.port());
    C.send("GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    std::string Resp = C.recvAll();
    EXPECT_NE(Resp.find("200 OK"), std::string::npos) << Resp;
    EXPECT_NE(Resp.find("ok\n"), std::string::npos) << Resp;
  }
  {
    TestClient C(F.Srv.port());
    C.send("GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    std::string Resp = C.recvAll();
    EXPECT_NE(Resp.find("200 OK"), std::string::npos);
    EXPECT_NE(Resp.find("application/json"), std::string::npos);
    // ServiceStats::json(), saturation gauges included.
    EXPECT_NE(Resp.find("\"submitted\":"), std::string::npos);
    EXPECT_NE(Resp.find("\"queue_depth\":"), std::string::npos);
    EXPECT_NE(Resp.find("\"in_flight\":"), std::string::npos);
    EXPECT_NE(Resp.find("\"uptime_seconds\":"), std::string::npos);
    // The cost-model block rides along for operators tuning admission.
    EXPECT_NE(Resp.find("\"cost_model\":{"), std::string::npos);
    EXPECT_NE(Resp.find("\"budget_auto_derived\":"), std::string::npos);
  }
  {
    TestClient C(F.Srv.port());
    C.send("GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    EXPECT_NE(C.recvAll().find("404 Not Found"), std::string::npos);
  }
  {
    TestClient C(F.Srv.port());
    C.send("POST /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    EXPECT_NE(C.recvAll().find("405 Method Not Allowed"), std::string::npos);
  }
  F.drain();
  EXPECT_EQ(F.Srv.stats().HttpRequests, 4u);
}

TEST(NetServer, HttpKeepAliveServesMultipleRequests) {
  ServerFixture F;
  TestClient C(F.Srv.port());
  // HTTP/1.1 defaults to keep-alive: the connection survives a
  // response and serves the next request.
  C.send("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  std::string R1 = C.recvHttpResponse();
  EXPECT_NE(R1.find("200 OK"), std::string::npos) << R1;
  EXPECT_NE(R1.find("Connection: keep-alive"), std::string::npos) << R1;
  C.send("GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
  std::string R2 = C.recvHttpResponse();
  EXPECT_NE(R2.find("application/json"), std::string::npos) << R2;
  EXPECT_NE(R2.find("Connection: keep-alive"), std::string::npos) << R2;
  // ...until the client asks to close.
  C.send("GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  std::string R3 = C.recvAll();
  EXPECT_NE(R3.find("Connection: close"), std::string::npos) << R3;
  EXPECT_TRUE(C.atEof());
  F.drain();
  EXPECT_EQ(F.Srv.stats().HttpRequests, 3u);
  EXPECT_EQ(F.Srv.stats().Accepted, 1u); // one connection served all three
}

TEST(NetServer, Http10ClosesUnlessAskedToKeep) {
  ServerFixture F;
  {
    // HTTP/1.0 defaults to close...
    TestClient C(F.Srv.port());
    C.send("GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n");
    std::string R = C.recvAll();
    EXPECT_NE(R.find("Connection: close"), std::string::npos) << R;
    EXPECT_TRUE(C.atEof());
  }
  {
    // ...and keeps only on an explicit opt-in.
    TestClient C(F.Srv.port());
    C.send("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    std::string R = C.recvHttpResponse();
    EXPECT_NE(R.find("Connection: keep-alive"), std::string::npos) << R;
    C.send("GET /healthz HTTP/1.0\r\nConnection: close\r\n\r\n");
    EXPECT_NE(C.recvAll().find("200 OK"), std::string::npos);
  }
}

TEST(NetServer, HttpKeepAliveCapClosesOnTheFinalSequentialResponse) {
  ServerFixture F;
  TestClient C(F.Srv.port());
  // One request at a time (no pipelining): every response up to the
  // per-connection cap keeps the connection alive, the cap-th response
  // itself carries Connection: close — the client learns about the cap
  // from the response that exhausts it, never from a surprise EOF on
  // its next request.
  for (uint32_t I = 1; I <= MaxHttpRequestsPerConn; ++I) {
    C.send("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    std::string R =
        I < MaxHttpRequestsPerConn ? C.recvHttpResponse() : C.recvAll();
    ASSERT_NE(R.find("200 OK"), std::string::npos) << "request " << I;
    if (I < MaxHttpRequestsPerConn)
      EXPECT_NE(R.find("Connection: keep-alive"), std::string::npos)
          << "request " << I << " of " << MaxHttpRequestsPerConn << ": " << R;
    else
      EXPECT_NE(R.find("Connection: close"), std::string::npos)
          << "final request did not announce the close: " << R;
  }
  EXPECT_TRUE(C.atEof());
  F.drain();
  EXPECT_EQ(F.Srv.stats().HttpRequests, uint64_t(MaxHttpRequestsPerConn));
  EXPECT_EQ(F.Srv.stats().Accepted, 1u);
}

TEST(NetServer, HttpKeepAlivePipelineCapForcesClose) {
  ServerFixture F;
  TestClient C(F.Srv.port());
  // Pipeline more requests than the per-connection cap in one write:
  // exactly MaxHttpRequestsPerConn are answered, the last one carries
  // Connection: close, and the surplus is discarded with the close.
  std::string Wire;
  for (uint32_t I = 0; I < MaxHttpRequestsPerConn + 4; ++I)
    Wire += "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  C.send(Wire);
  std::string All = C.recvAll();
  size_t Count = 0;
  for (size_t Pos = All.find("200 OK"); Pos != std::string::npos;
       Pos = All.find("200 OK", Pos + 1))
    ++Count;
  EXPECT_EQ(Count, size_t(MaxHttpRequestsPerConn));
  size_t LastClose = All.rfind("Connection: close");
  ASSERT_NE(LastClose, std::string::npos);
  EXPECT_GT(LastClose, All.rfind("Connection: keep-alive"));
  F.drain();
  EXPECT_EQ(F.Srv.stats().HttpRequests, uint64_t(MaxHttpRequestsPerConn));
}

TEST(NetServer, DeadlineShedsOnlyOnLearnedEstimates) {
  ServerFixture F;
  TestClient C(F.Srv.port());
  // Cold source, absurd 1ns deadline: the model has no entry yet and
  // prior-based estimates never shed, so the request runs.
  WireRequest Cold;
  Cold.Id = 1;
  Cold.Kind = MsgKind::CompileRun;
  Cold.Source = "5 + 6";
  Cold.DeadlineNanos = 1;
  C.sendRequest(Cold);
  WireResponse R1 = C.recvResponse();
  EXPECT_EQ(R1.Status, WireStatus::Ok);
  EXPECT_EQ(R1.Result, "11");
  // The completion fed the model a learned per-source estimate (far
  // above 1ns): the identical request now sheds at admission, before
  // touching the queue.
  WireRequest Again = Cold;
  Again.Id = 2;
  C.sendRequest(Again);
  WireResponse R2 = C.recvResponse();
  EXPECT_EQ(R2.Status, WireStatus::Shed);
  EXPECT_NE(R2.Error.find("deadline"), std::string::npos) << R2.Error;
  // A generous deadline admits the same hot source again.
  WireRequest Relaxed = Cold;
  Relaxed.Id = 3;
  Relaxed.DeadlineNanos = 60ull * 1000 * 1000 * 1000;
  C.sendRequest(Relaxed);
  WireResponse R3 = C.recvResponse();
  EXPECT_EQ(R3.Status, WireStatus::Ok);
  EXPECT_EQ(R3.Id, 3u);
  F.drain();
  EXPECT_EQ(F.Srv.stats().DeadlineSheds, 1u);
  EXPECT_EQ(F.Srv.stats().Sheds, 0u); // disjoint from queue-full sheds
}

TEST(NetServer, BinaryGarbageGetsProtocolErrorAndCloses) {
  ServerFixture F;
  {
    // First byte 0x00 selects the binary dialect; the frame is noise.
    TestClient C(F.Srv.port());
    std::string Garbage = {'\x00', '\x00', '\x00', '\x05'};
    Garbage += "ncdl!";
    C.send(Garbage);
    WireResponse Resp = C.recvResponse();
    EXPECT_EQ(Resp.Status, WireStatus::ProtocolError);
    EXPECT_EQ(Resp.Id, 0u);
    EXPECT_TRUE(C.atEof()); // fail closed: the connection is gone
  }
  {
    // An oversized length prefix dies before any body is buffered.
    TestClient C(F.Srv.port());
    C.send(std::string({'\x00', '\x90', '\x00', '\x00'}));
    WireResponse Resp = C.recvResponse();
    EXPECT_EQ(Resp.Status, WireStatus::ProtocolError);
    EXPECT_TRUE(C.atEof());
  }
  {
    // Non-HTTP text garbage lands in the HTTP path and gets a 400.
    TestClient C(F.Srv.port());
    C.send("latrine protocol v9\r\n\r\n");
    EXPECT_NE(C.recvAll().find("400 Bad Request"), std::string::npos);
  }
  F.drain();
  EXPECT_EQ(F.Srv.stats().ProtocolErrors, 3u);
}

TEST(NetServer, ShedsAtFullQueueWithImmediateResponse) {
  // Workers=1 + QueueCapacity=1 + a parked worker make admission
  // deterministic: one request queues, the rest shed instantly.
  service::ServiceConfig SC;
  SC.Workers = 1;
  SC.QueueCapacity = 1;
  ServerFixture F(SC);

  std::atomic<bool> Parked{false}, Release{false};
  service::Request Blocker;
  Blocker.Source = "1 + 1";
  F.Svc.submit(std::move(Blocker), [&](service::Response) {
    Parked = true;
    while (!Release)
      std::this_thread::yield();
  });
  // The callback runs on the worker after processing: once Parked is
  // up the single worker is pinned inside the callback.
  while (!Parked)
    std::this_thread::yield();

  TestClient C(F.Srv.port());
  for (uint64_t I = 0; I < 3; ++I) {
    WireRequest Req;
    Req.Id = I;
    Req.Kind = MsgKind::CompileRun;
    Req.Source = "2 + " + std::to_string(I);
    C.sendRequest(Req);
  }
  // The two sheds come back immediately, while the worker is still
  // parked; the queued request completes only after release.
  WireResponse S1 = C.recvResponse();
  WireResponse S2 = C.recvResponse();
  EXPECT_EQ(S1.Status, WireStatus::Shed);
  EXPECT_EQ(S2.Status, WireStatus::Shed);
  EXPECT_NE(S1.Error.find("shed"), std::string::npos);
  Release = true;
  WireResponse Done = C.recvResponse();
  EXPECT_EQ(Done.Status, WireStatus::Ok);
  EXPECT_EQ(Done.Id, 0u); // the first request was the one that queued

  F.drain();
  EXPECT_EQ(F.Srv.stats().Sheds, 2u);
  EXPECT_EQ(F.Svc.stats().Rejected, 2u);
}

TEST(NetServer, HalfCloseStillFlushesOwedResponses) {
  ServerFixture F;
  TestClient C(F.Srv.port());
  std::string Wire;
  for (uint64_t I = 0; I < 4; ++I) {
    WireRequest Req;
    Req.Id = I;
    Req.Kind = MsgKind::CompileRun;
    Req.Source = "3 + " + std::to_string(I);
    encodeRequest(Req, Wire);
  }
  C.send(Wire);
  // Half-close before reading anything: the server must still answer
  // all four, then close.
  ::shutdown(C.Fd, SHUT_WR);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(C.recvResponse().Status, WireStatus::Ok);
  EXPECT_TRUE(C.atEof());
}

TEST(NetServer, DrainFinishesInFlightWorkThenExits) {
  service::ServiceConfig SC;
  SC.Workers = 1;
  SC.QueueCapacity = 8;
  ServerFixture F(SC);

  std::atomic<bool> Parked{false}, Release{false};
  service::Request Blocker;
  Blocker.Source = "1 + 1";
  F.Svc.submit(std::move(Blocker), [&](service::Response) {
    Parked = true;
    while (!Release)
      std::this_thread::yield();
  });
  while (!Parked)
    std::this_thread::yield();

  TestClient C(F.Srv.port());
  WireRequest Req;
  Req.Id = 9;
  Req.Kind = MsgKind::CompileRun;
  Req.Source = "4 + 1";
  C.sendRequest(Req);
  // Give the loop a moment to admit the request before draining, then
  // drain while it is still queued behind the parked worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  F.Srv.requestDrain();
  Release = true;
  // The drain must wait for the admitted request: response, then EOF,
  // then the loop exits.
  WireResponse Resp = C.recvResponse();
  EXPECT_EQ(Resp.Status, WireStatus::Ok);
  EXPECT_EQ(Resp.Id, 9u);
  EXPECT_EQ(Resp.Result, "5");
  EXPECT_TRUE(C.atEof());
  F.LoopThread.join();
  F.Svc.shutdown();
  EXPECT_EQ(F.Srv.stats().OrphanedCompletions, 0u);
}

TEST(NetServer, DrainClosesIdleConnectionsImmediately) {
  ServerFixture F;
  TestClient C(F.Srv.port());
  // Prove the connection is established (one round-trip)...
  WireRequest Req;
  Req.Id = 1;
  Req.Kind = MsgKind::CompileRun;
  Req.Source = "1 + 1";
  C.sendRequest(Req);
  EXPECT_EQ(C.recvResponse().Status, WireStatus::Ok);
  // ...then drain: the idle connection is closed, run() returns.
  F.Srv.requestDrain();
  EXPECT_TRUE(C.atEof());
  F.LoopThread.join();
  F.Svc.shutdown();
}

} // namespace
