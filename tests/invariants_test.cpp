//===- tests/invariants_test.cpp - Structural output invariants -----------===//
//
// Invariants of region inference's output that neither the checker's
// rules nor the runtime state directly, yet everything depends on:
//
//   * region scoping: every allocation target and region-application
//     argument is the global region, a letregion-bound region in scope,
//     or a quantified formal of an enclosing fun binding;
//   * binder uniqueness: no region is letregion-bound twice, no region is
//     both letregion-bound and quantified;
//   * every region application's substitution covers exactly the callee
//     scheme's quantifiers.
//
// Checked over the whole benchmark suite, the counterexample programs and
// a fresh batch of random programs, under all three strategies.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "bench/Programs.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

using namespace rml;

namespace {

class InvariantWalker {
public:
  std::vector<std::string> Violations;

  void run(const RProgram &P) {
    std::set<uint32_t> Scope{0}; // the global region
    walk(P.Root, Scope);
  }

  std::set<uint32_t> BoundOnce;
  std::set<uint32_t> Quantified;

private:
  void violation(std::string Msg) { Violations.push_back(std::move(Msg)); }

  void checkInScope(RegionVar R, const std::set<uint32_t> &Scope,
                    const char *What) {
    if (!Scope.count(R.Id))
      violation(std::string(What) + " targets out-of-scope region r" +
                std::to_string(R.Id));
  }

  void walk(const RExpr *E, std::set<uint32_t> Scope) {
    if (!E)
      return;
    switch (E->K) {
    case RExpr::Kind::LetRegion: {
      if (!BoundOnce.insert(E->BoundRho.Id).second)
        violation("region r" + std::to_string(E->BoundRho.Id) +
                  " letregion-bound twice");
      if (Quantified.count(E->BoundRho.Id))
        violation("region r" + std::to_string(E->BoundRho.Id) +
                  " both quantified and letregion-bound");
      Scope.insert(E->BoundRho.Id);
      walk(E->A, Scope);
      return;
    }
    case RExpr::Kind::FunBind: {
      for (RegionVar R : E->Sigma.QRegions) {
        Quantified.insert(R.Id);
        if (BoundOnce.count(R.Id))
          violation("region r" + std::to_string(R.Id) +
                    " both letregion-bound and quantified");
        Scope.insert(R.Id);
      }
      walk(E->A, Scope);
      return;
    }
    case RExpr::Kind::RApp: {
      checkInScope(E->AtRho, Scope, "region application");
      for (const auto &[From, To] : E->Inst.Sr)
        checkInScope(To, Scope, "region instantiation");
      walk(E->A, Scope);
      return;
    }
    default:
      if (E->AtRho.isValid())
        checkInScope(E->AtRho, Scope, "allocation");
      walk(E->A, Scope);
      walk(E->B, Scope);
      walk(E->C, Scope);
      for (const RExpr *Item : E->Items)
        walk(Item, Scope);
      return;
    }
  }
};

void expectInvariants(const std::string &Src, Strategy S,
                      const std::string &Label) {
  Compiler C;
  CompileOptions Opts;
  Opts.Strat = S;
  auto Unit = C.compile(Src, Opts);
  ASSERT_NE(Unit, nullptr) << Label << ": " << C.diagnostics().str();
  InvariantWalker W;
  W.run(Unit->program());
  for (const std::string &V : W.Violations)
    ADD_FAILURE() << Label << " (" << strategyName(S) << "): " << V;
}

TEST(Invariants, HoldOverTheBenchmarkSuite) {
  for (const bench::BenchProgram &P : bench::benchmarkSuite())
    for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R})
      expectInvariants(P.Source, S, P.Name);
}

TEST(Invariants, HoldOverTheCounterexamples) {
  for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
    expectInvariants(bench::danglingPointerProgram(), S, "figure1");
    expectInvariants(bench::spuriousChainProgram(), S, "figure8");
    expectInvariants(bench::exnDanglingProgram(), S, "section44");
  }
}

TEST(Invariants, RegionApplicationsCoverTheirSchemes) {
  // Every RApp substitution domain matches the callee scheme exactly —
  // statically resolvable because RApps always apply named bindings.
  Compiler C;
  auto Unit = C.compile(bench::findBenchmark("hof")->Source);
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();

  // Collect fun schemes by name (lexically; names are unique here).
  std::map<std::string, const RScheme *> Schemes;
  std::function<void(const RExpr *)> Collect = [&](const RExpr *E) {
    if (!E)
      return;
    if (E->K == RExpr::Kind::FunBind)
      Schemes[C.names().text(E->Name)] = &E->Sigma;
    Collect(E->A);
    Collect(E->B);
    Collect(E->C);
    for (const RExpr *Item : E->Items)
      Collect(Item);
  };
  Collect(Unit->program().Root);

  unsigned Checked = 0;
  std::function<void(const RExpr *)> Verify = [&](const RExpr *E) {
    if (!E)
      return;
    if (E->K == RExpr::Kind::RApp && E->A->K == RExpr::Kind::Var) {
      auto It = Schemes.find(C.names().text(E->A->Name));
      if (It != Schemes.end()) {
        const RScheme *S = It->second;
        EXPECT_EQ(E->Inst.Sr.size(), S->QRegions.size());
        EXPECT_EQ(E->Inst.Se.size(), S->QEffects.size());
        ++Checked;
      }
    }
    Verify(E->A);
    Verify(E->B);
    Verify(E->C);
    for (const RExpr *Item : E->Items)
      Verify(Item);
  };
  Verify(Unit->program().Root);
  EXPECT_GT(Checked, 0u);
}

} // namespace
