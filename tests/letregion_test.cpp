//===- tests/letregion_test.cpp - letregion placement tests ---------------===//
//
// Where region inference discharges regions: dead intermediates are
// bound tightly, escaping values are not, and the rg/rg- difference in
// placement is exactly the paper's Figure 2(a) vs 2(b).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "bench/Programs.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

using namespace rml;

namespace {

class LetregionTest : public ::testing::Test {
protected:
  std::unique_ptr<CompiledUnit> compile(std::string_view Src,
                                        Strategy S = Strategy::Rg) {
    CompileOptions Opts;
    Opts.Strat = S;
    auto Unit = C.compile(Src, Opts);
    EXPECT_NE(Unit, nullptr) << C.diagnostics().str();
    return Unit;
  }

  /// Collects the regions bound by letregion.
  static void boundRegions(const RExpr *E, std::set<uint32_t> &Out) {
    if (!E)
      return;
    if (E->K == RExpr::Kind::LetRegion)
      Out.insert(E->BoundRho.Id);
    boundRegions(E->A, Out);
    boundRegions(E->B, Out);
    boundRegions(E->C, Out);
    for (const RExpr *Item : E->Items)
      boundRegions(Item, Out);
  }

  /// True when some letregion-bound region is the allocation target of a
  /// node of kind \p K.
  static bool masksAllocationOf(const CompiledUnit &U, RExpr::Kind K) {
    std::set<uint32_t> Bound;
    boundRegions(U.program().Root, Bound);
    return anyAlloc(U.program().Root, K, Bound);
  }

  static bool anyAlloc(const RExpr *E, RExpr::Kind K,
                       const std::set<uint32_t> &Bound) {
    if (!E)
      return false;
    if (E->K == K && E->AtRho.isValid() && Bound.count(E->AtRho.Id))
      return true;
    if (anyAlloc(E->A, K, Bound) || anyAlloc(E->B, K, Bound) ||
        anyAlloc(E->C, K, Bound))
      return true;
    for (const RExpr *Item : E->Items)
      if (anyAlloc(Item, K, Bound))
        return true;
    return false;
  }

  Compiler C;
};

TEST_F(LetregionTest, DeadIntermediatePairIsMasked) {
  auto Unit = compile("#1 (1, 2) + 3");
  ASSERT_NE(Unit, nullptr);
  EXPECT_TRUE(masksAllocationOf(*Unit, RExpr::Kind::PairE));
}

TEST_F(LetregionTest, EscapingPairIsNotMasked) {
  auto Unit = compile("(1, 2)");
  ASSERT_NE(Unit, nullptr);
  EXPECT_FALSE(masksAllocationOf(*Unit, RExpr::Kind::PairE));
  const Mu *M = Unit->rootMu();
  ASSERT_EQ(M->K, Mu::Kind::Boxed);
  EXPECT_TRUE(M->Rho.isGlobal());
}

TEST_F(LetregionTest, IntermediateStringInConcatChainIsMasked) {
  // ("a" ^ "b") ^ "c": the inner result dies after the outer concat.
  auto Unit = compile("size ((\"a\" ^ \"b\") ^ \"c\")");
  ASSERT_NE(Unit, nullptr);
  std::set<uint32_t> Bound;
  boundRegions(Unit->program().Root, Bound);
  // All four strings die (result is an int): everything maskable.
  EXPECT_GE(Bound.size(), 3u);
}

TEST_F(LetregionTest, CapturedValueRegionNotMaskedWhileClosureLive) {
  // The closure result mentions n's region through... n is an int here;
  // use a string capture: the closure type's latent effect holds the
  // region, so it cannot be masked before the closure's last use.
  auto Unit = compile("fun mk u = let val s = \"a\" ^ \"b\" in "
                      "fn v => size s end\n"
                      "val f = mk ()\n;f ()");
  ASSERT_NE(Unit, nullptr);
  rt::RunResult R = C.run(*Unit);
  EXPECT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.ResultText, "2");
}

TEST_F(LetregionTest, Figure2PlacementDiffersBetweenRgAndRgMinus) {
  // The paper's Figure 2: under rg- the string's region is bound inside
  // the h binding (2(a)); under rg it is bound around h's whole live
  // range (2(b)). The *depth* at which the dead string's region is
  // bound therefore differs between the two strategies.
  const std::string &Src = bench::danglingPointerProgram();
  auto URg = compile(Src, Strategy::Rg);
  auto URgm = compile(Src, Strategy::RgMinus);
  ASSERT_NE(URg, nullptr);
  ASSERT_NE(URgm, nullptr);
  auto Depths = [](const RExpr *Root) {
    std::map<uint32_t, unsigned> Out;
    std::function<void(const RExpr *, unsigned)> Walk =
        [&](const RExpr *E, unsigned D) {
          if (!E)
            return;
          if (E->K == RExpr::Kind::LetRegion)
            Out[E->BoundRho.Id] = D;
          Walk(E->A, D + 1);
          Walk(E->B, D + 1);
          Walk(E->C, D + 1);
          for (const RExpr *Item : E->Items)
            Walk(Item, D + 1);
        };
    Walk(Root, 0);
    return Out;
  };
  EXPECT_NE(Depths(URg->program().Root), Depths(URgm->program().Root));
}

TEST_F(LetregionTest, TofteTalpinMasksMoreThanRg) {
  // r permits dangling pointers, so it can bind regions rg must keep:
  // never fewer letregion-bound regions than rg.
  const std::string &Src = bench::danglingPointerProgram();
  auto URg = compile(Src, Strategy::Rg);
  auto UR = compile(Src, Strategy::R);
  ASSERT_NE(URg, nullptr);
  ASSERT_NE(UR, nullptr);
  std::set<uint32_t> BRg, BR;
  boundRegions(URg->program().Root, BRg);
  boundRegions(UR->program().Root, BR);
  EXPECT_GE(BR.size(), BRg.size());
}

TEST_F(LetregionTest, BoundRegionsAreUnique) {
  // Each region variable is discharged by exactly one letregion.
  auto Unit = compile(bench::findBenchmark("msort")->Source);
  ASSERT_NE(Unit, nullptr);
  std::vector<uint32_t> All;
  std::function<void(const RExpr *)> Walk = [&](const RExpr *E) {
    if (!E)
      return;
    if (E->K == RExpr::Kind::LetRegion)
      All.push_back(E->BoundRho.Id);
    Walk(E->A);
    Walk(E->B);
    Walk(E->C);
    for (const RExpr *Item : E->Items)
      Walk(Item);
  };
  Walk(Unit->program().Root);
  std::set<uint32_t> Unique(All.begin(), All.end());
  EXPECT_EQ(All.size(), Unique.size());
}

TEST_F(LetregionTest, ExplicitGlobalPinningDisablesMasking) {
  // The paper's future-work item, implemented as `global e`: the pinned
  // string's region is the global region, so no letregion binds it even
  // though it is otherwise dead.
  auto Pinned = compile("size (global (\"a\" ^ \"b\"))");
  ASSERT_NE(Pinned, nullptr);
  auto Plain = compile("size (\"a\" ^ \"b\")");
  ASSERT_NE(Plain, nullptr);
  std::set<uint32_t> BPinned, BPlain;
  boundRegions(Pinned->program().Root, BPinned);
  boundRegions(Plain->program().Root, BPlain);
  // The concat destination is masked without the pin, not with it.
  EXPECT_LT(BPinned.size(), BPlain.size());
  rt::RunResult R = C.run(*Pinned);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.ResultText, "2");
}

TEST_F(LetregionTest, GlobalPinIsSemanticallyTransparent) {
  auto Unit = compile(
      "fun mk u = global (fn v => \"x\" ^ \"y\")\n"
      "val f = mk ()\n"
      "val w = work 30000\n"
      ";size (f ())");
  ASSERT_NE(Unit, nullptr);
  rt::EvalOptions E;
  E.GcThresholdWords = 1024;
  rt::RunResult R = C.run(*Unit, E);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.ResultText, "2");
}

TEST_F(LetregionTest, GlobalRegionIsNeverBound) {
  auto Unit = compile(bench::findBenchmark("strings")->Source);
  ASSERT_NE(Unit, nullptr);
  std::set<uint32_t> Bound;
  boundRegions(Unit->program().Root, Bound);
  EXPECT_EQ(Bound.count(0), 0u);
}

} // namespace
