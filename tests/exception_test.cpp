//===- tests/exception_test.cpp - Exception semantics tests ---------------===//
//
// Exceptions in the region runtime (Section 4.4): values live in the
// global region, unwinding releases letregion-bound regions on the way
// out, handlers match by constructor, and polymorphic payloads are
// pinned to global regions under rg.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class ExceptionTest : public ::testing::Test {
protected:
  rt::RunResult run(std::string_view Src, Strategy S = Strategy::Rg) {
    Compiler C;
    CompileOptions Opts;
    Opts.Strat = S;
    auto Unit = C.compile(Src, Opts);
    if (!Unit) {
      rt::RunResult R;
      R.Outcome = rt::RunOutcome::RuntimeError;
      R.Error = "compile failed: " + C.diagnostics().str();
      return R;
    }
    rt::EvalOptions E;
    E.GcThresholdWords = 1024;
    return C.run(*Unit, E);
  }

  std::string result(std::string_view Src) {
    rt::RunResult R = run(Src);
    EXPECT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
    return R.ResultText;
  }
};

TEST_F(ExceptionTest, RaiseAndHandle) {
  EXPECT_EQ(result("exception E of int\n(raise E 41) handle E v => v + 1"),
            "42");
}

TEST_F(ExceptionTest, NullaryExceptions) {
  EXPECT_EQ(result("exception Stop\n(raise Stop) handle Stop => 9"), "9");
}

TEST_F(ExceptionTest, WildcardCatchesEverything) {
  EXPECT_EQ(result("exception A\nexception B of int\n"
                   "(raise B 5) handle _ => 1"),
            "1");
}

TEST_F(ExceptionTest, NonMatchingHandlerKeepsUnwinding) {
  EXPECT_EQ(result("exception A\nexception B\n"
                   "(((raise B) handle A => 1) handle B => 2)"),
            "2");
}

TEST_F(ExceptionTest, UncaughtExceptionReported) {
  rt::RunResult R = run("exception Boom of int\nraise Boom 3");
  EXPECT_EQ(R.Outcome, rt::RunOutcome::UncaughtException);
  EXPECT_NE(R.Error.find("Boom"), std::string::npos);
}

TEST_F(ExceptionTest, UnwindingReleasesRegions) {
  // The handler runs after the raising call's local regions are gone;
  // the live payload is global and GC keeps working afterwards.
  EXPECT_EQ(result("exception E of int\n"
                   "fun f u = let val p = (1, 2) in raise E (#1 p) end\n"
                   "val r = (f ()) handle E v => v\n"
                   "val w = work 50000\n"
                   ";r"),
            "1");
}

TEST_F(ExceptionTest, PayloadSurvivesCollectionAfterEscape) {
  // A string payload raised out of the allocating scope: Section 4.4
  // pins it to the global region, so a later collection is safe.
  EXPECT_EQ(result("exception Msg of string\n"
                   "fun f u = raise Msg (\"a\" ^ \"b\")\n"
                   "val s = (f ()) handle Msg m => m\n"
                   "val w = work 50000\n"
                   ";size s"),
            "2");
}

TEST_F(ExceptionTest, HandlersInsideRecursion) {
  EXPECT_EQ(result(
                "exception Found of int\n"
                "fun find p xs = case xs of nil => raise Found (0 - 1) "
                "| h :: t => if p h then h else find p t\n"
                "val hit = (find (fn x => x > 3) [1, 2, 3, 4, 5])\n"
                "val miss = (find (fn x => x > 9) [1, 2]) "
                "handle Found d => d\n"
                ";(hit, miss)"),
            "(4, -1)");
}

TEST_F(ExceptionTest, RaiseInsideHandlerPropagates) {
  EXPECT_EQ(result("exception A\nexception B\n"
                   "(((raise A) handle A => raise B) handle B => 7)"),
            "7");
}

TEST_F(ExceptionTest, ExceptionValuesAreFirstClass) {
  EXPECT_EQ(result("exception E of int\n"
                   "val v = E 5\n"
                   ";((raise v) handle E n => n * 2)"),
            "10");
}

TEST_F(ExceptionTest, ShadowedHandlersUseInnermostBinding) {
  EXPECT_EQ(result("exception E of int\n"
                   "((raise E 1) handle E v => v + 10)"),
            "11");
}

TEST_F(ExceptionTest, PolymorphicPayloadUnderAllSafeStrategies) {
  const char *Src = "fun wrap (x : 'a) = let exception Box of 'a in "
                    "(Box x, fn e => (raise e) handle Box v => v) end\n"
                    "val p = wrap (\"x\" ^ \"y\")\n"
                    "val w = work 30000\n"
                    ";size (#2 p (#1 p))";
  rt::RunResult R = run(Src, Strategy::Rg);
  EXPECT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.ResultText, "2");
  rt::RunResult R2 = run(Src, Strategy::R);
  EXPECT_EQ(R2.Outcome, rt::RunOutcome::Ok) << R2.Error;
}

} // namespace
