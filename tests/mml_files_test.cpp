//===- tests/mml_files_test.cpp - The shipped .mml programs ---------------===//
//
// The example programs under examples/programs/ keep working: the
// tutorial and primes run clean under rg, and figure1.mml reproduces the
// paper's crash under rg-.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace rml;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

std::string programPath(const char *Name) {
  return std::string(RML_SOURCE_DIR) + "/examples/programs/" + Name;
}

TEST(MmlFiles, TutorialRuns) {
  Compiler C;
  auto Unit = C.compile(readFile(programPath("tutorial.mml")));
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();
  rt::RunResult R = C.run(*Unit);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.Output, "hello, regions\n");
  EXPECT_EQ(R.ResultText, "(387, ((2, 1), 3))");
}

TEST(MmlFiles, PrimesRunsUnderEveryStrategy) {
  std::string Src = readFile(programPath("primes.mml"));
  for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
    Compiler C;
    CompileOptions Opts;
    Opts.Strat = S;
    auto Unit = C.compile(Src, Opts);
    ASSERT_NE(Unit, nullptr) << C.diagnostics().str();
    rt::RunResult R = C.run(*Unit);
    ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok)
        << strategyName(S) << ": " << R.Error;
    EXPECT_EQ(R.ResultText, "(196, 1193)");
  }
}

TEST(MmlFiles, Figure1CrashesUnderRgMinusOnly) {
  std::string Src = readFile(programPath("figure1.mml"));
  rt::EvalOptions E;
  E.GcThresholdWords = 2048;
  E.RetainReleasedPages = true;

  Compiler CRg;
  auto URg = CRg.compile(Src);
  ASSERT_NE(URg, nullptr) << CRg.diagnostics().str();
  EXPECT_EQ(CRg.run(*URg, E).Outcome, rt::RunOutcome::Ok);

  Compiler CRgm;
  CompileOptions Opts;
  Opts.Strat = Strategy::RgMinus;
  auto URgm = CRgm.compile(Src, Opts);
  ASSERT_NE(URgm, nullptr) << CRgm.diagnostics().str();
  EXPECT_EQ(CRgm.run(*URgm, E).Outcome, rt::RunOutcome::DanglingPointer);
}

} // namespace
