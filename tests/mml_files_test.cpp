//===- tests/mml_files_test.cpp - The shipped .mml programs ---------------===//
//
// The example programs under examples/programs/ keep working: the
// tutorial and primes run clean under rg, and figure1.mml reproduces the
// paper's crash under rg-. The differential suite at the bottom runs
// every shipped .mml under rg and rg-, each with the cross-request page
// pool on and off, and demands the four configurations agree on every
// observable.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "rt/PagePool.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace rml;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

std::string programPath(const char *Name) {
  return std::string(RML_SOURCE_DIR) + "/examples/programs/" + Name;
}

TEST(MmlFiles, TutorialRuns) {
  Compiler C;
  auto Unit = C.compile(readFile(programPath("tutorial.mml")));
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();
  rt::RunResult R = C.run(*Unit);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.Output, "hello, regions\n");
  EXPECT_EQ(R.ResultText, "(387, ((2, 1), 3))");
}

TEST(MmlFiles, PrimesRunsUnderEveryStrategy) {
  std::string Src = readFile(programPath("primes.mml"));
  for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
    Compiler C;
    CompileOptions Opts;
    Opts.Strat = S;
    auto Unit = C.compile(Src, Opts);
    ASSERT_NE(Unit, nullptr) << C.diagnostics().str();
    rt::RunResult R = C.run(*Unit);
    ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok)
        << strategyName(S) << ": " << R.Error;
    EXPECT_EQ(R.ResultText, "(196, 1193)");
  }
}

TEST(MmlFiles, Figure1CrashesUnderRgMinusOnly) {
  std::string Src = readFile(programPath("figure1.mml"));
  rt::EvalOptions E;
  E.GcThresholdWords = 2048;
  E.RetainReleasedPages = true;

  Compiler CRg;
  auto URg = CRg.compile(Src);
  ASSERT_NE(URg, nullptr) << CRg.diagnostics().str();
  EXPECT_EQ(CRg.run(*URg, E).Outcome, rt::RunOutcome::Ok);

  Compiler CRgm;
  CompileOptions Opts;
  Opts.Strat = Strategy::RgMinus;
  auto URgm = CRgm.compile(Src, Opts);
  ASSERT_NE(URgm, nullptr) << CRgm.diagnostics().str();
  EXPECT_EQ(CRgm.run(*URgm, E).Outcome, rt::RunOutcome::DanglingPointer);
}

//===----------------------------------------------------------------------===//
// Differential: pool on vs pool off, under rg and rg-.
//===----------------------------------------------------------------------===//

/// Run `Src` under `Strat`, optionally drawing heap pages from `Pool`.
rt::RunResult runWithPool(const std::string &Src, Strategy Strat,
                          rt::PagePool *Pool) {
  Compiler C;
  CompileOptions Opts;
  Opts.Strat = Strat;
  auto Unit = C.compile(Src, Opts);
  EXPECT_NE(Unit, nullptr) << C.diagnostics().str();
  if (!Unit) {
    rt::RunResult Bad;
    Bad.Outcome = rt::RunOutcome::RuntimeError;
    return Bad;
  }
  rt::EvalOptions E;
  E.GcThresholdWords = 2048; // several collections per program
  E.SharedPool = Pool;
  return C.run(*Unit, E);
}

TEST(MmlFiles, EveryProgramAgreesWithAndWithoutThePool) {
  // Every shipped example, discovered rather than listed, so new .mml
  // files are covered the day they land.
  std::vector<std::string> Files;
  for (const auto &Entry : std::filesystem::directory_iterator(
           std::string(RML_SOURCE_DIR) + "/examples/programs"))
    if (Entry.path().extension() == ".mml")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  ASSERT_GE(Files.size(), 3u);

  // One pool across the whole matrix: later programs run on pages the
  // earlier ones recycled, the cross-request scenario.
  rt::PagePool SharedPool(512);

  for (const std::string &Path : Files) {
    SCOPED_TRACE(Path);
    std::string Src = readFile(Path);
    for (Strategy Strat : {Strategy::Rg, Strategy::RgMinus}) {
      SCOPED_TRACE(strategyName(Strat));
      rt::RunResult Fresh = runWithPool(Src, Strat, nullptr);
      for (int Rep = 0; Rep < 2; ++Rep) {
        rt::RunResult Pooled = runWithPool(Src, Strat, &SharedPool);
        EXPECT_EQ(Pooled.Outcome, Fresh.Outcome) << "rep " << Rep;
        EXPECT_EQ(Pooled.Output, Fresh.Output) << "rep " << Rep;
        EXPECT_EQ(Pooled.ResultText, Fresh.ResultText) << "rep " << Rep;
        EXPECT_EQ(Pooled.Heap.AllocWords, Fresh.Heap.AllocWords)
            << "rep " << Rep;
        EXPECT_EQ(Pooled.Heap.GcCount, Fresh.Heap.GcCount) << "rep " << Rep;
      }
    }
  }

  // The matrix genuinely recycled pages across programs.
  EXPECT_GT(SharedPool.stats().AcquireHits, 0u);
  EXPECT_LE(SharedPool.freePages(), SharedPool.capacity());
}

//===----------------------------------------------------------------------===//
// Differential: the tree walk vs the flat interpreter, every shipped
// program under every strategy. Two fresh Compilers per configuration —
// one runs the tree, one encodes/decodes and runs the flat unit — so
// the comparison also covers compile-side determinism (diagnostics and
// spurious statistics), the serialisation round trip, and the full
// runtime observables down to heap accounting.
//===----------------------------------------------------------------------===//

TEST(MmlFiles, EveryProgramAgreesBetweenTreeAndFlat) {
  std::vector<std::string> Files;
  for (const auto &Entry : std::filesystem::directory_iterator(
           std::string(RML_SOURCE_DIR) + "/examples/programs"))
    if (Entry.path().extension() == ".mml")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  ASSERT_GE(Files.size(), 3u);

  for (const std::string &Path : Files) {
    SCOPED_TRACE(Path);
    std::string Src = readFile(Path);
    for (Strategy Strat : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
      SCOPED_TRACE(strategyName(Strat));
      CompileOptions Opts;
      Opts.Strat = Strat;

      Compiler TreeC;
      auto TreeU = TreeC.compile(Src, Opts);
      ASSERT_NE(TreeU, nullptr) << TreeC.diagnostics().str();

      Compiler FlatC;
      auto FlatU = FlatC.compile(Src, Opts);
      ASSERT_NE(FlatU, nullptr) << FlatC.diagnostics().str();

      // Compile-side determinism across independent Compilers.
      EXPECT_EQ(FlatC.diagnostics().str(), TreeC.diagnostics().str());
      EXPECT_EQ(FlatU->Spurious.TotalFunctions,
                TreeU->Spurious.TotalFunctions);
      EXPECT_EQ(FlatU->Spurious.SpuriousFunctions,
                TreeU->Spurious.SpuriousFunctions);
      EXPECT_EQ(FlatU->Spurious.TotalInsts, TreeU->Spurious.TotalInsts);
      EXPECT_EQ(FlatU->Spurious.SpuriousBoxedInsts,
                TreeU->Spurious.SpuriousBoxedInsts);
      // Both flattenings encode to the same bytes (determinism), and the
      // decoded copy is what actually executes below — exactly the
      // disk-tier path.
      ASSERT_NE(TreeU->Flat, nullptr);
      ASSERT_NE(FlatU->Flat, nullptr);
      std::string Bytes = flat::encodeFlat(*FlatU->Flat);
      EXPECT_EQ(flat::encodeFlat(*TreeU->Flat), Bytes);
      std::shared_ptr<const flat::FlatUnit> Decoded = flat::decodeFlat(Bytes);
      ASSERT_NE(Decoded, nullptr);

      rt::EvalOptions E;
      E.GcThresholdWords = 2048;
      E.RetainReleasedPages = true; // exact dangling detection for rg-
      rt::RunResult Tree = TreeC.run(*TreeU, E);
      rt::RunResult Flat = Compiler::runFlat(*Decoded, E);
      EXPECT_EQ(Flat.Outcome, Tree.Outcome) << Tree.Error << Flat.Error;
      EXPECT_EQ(Flat.Error, Tree.Error);
      EXPECT_EQ(Flat.Output, Tree.Output);
      EXPECT_EQ(Flat.ResultText, Tree.ResultText);
      EXPECT_EQ(Flat.Steps, Tree.Steps);
      EXPECT_EQ(Flat.Heap.AllocWords, Tree.Heap.AllocWords);
      EXPECT_EQ(Flat.Heap.GcCount, Tree.Heap.GcCount);
      EXPECT_EQ(Flat.Heap.MinorGcCount, Tree.Heap.MinorGcCount);
      EXPECT_EQ(Flat.Heap.MajorGcCount, Tree.Heap.MajorGcCount);
      EXPECT_EQ(Flat.Heap.CopiedWords, Tree.Heap.CopiedWords);
      EXPECT_EQ(Flat.Heap.RegionsCreated, Tree.Heap.RegionsCreated);
      EXPECT_EQ(Flat.Heap.FiniteRegionsCreated,
                Tree.Heap.FiniteRegionsCreated);
      EXPECT_EQ(Flat.Heap.PagesAllocated, Tree.Heap.PagesAllocated);
      EXPECT_EQ(Flat.Heap.PeakHeapWords, Tree.Heap.PeakHeapWords);
      EXPECT_EQ(Flat.GcPauses.size(), Tree.GcPauses.size());
    }
  }
}

} // namespace
