//===- tests/pipeline_test.cpp - End-to-end pipeline tests ----------------===//

#include "core/Pipeline.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class PipelineTest : public ::testing::Test {
protected:
  /// Compile + check + run under the given strategy; returns the rendered
  /// result value or "" with a failure note.
  std::string runResult(std::string_view Src, Strategy S = Strategy::Rg) {
    Compiler C;
    CompileOptions Opts;
    Opts.Strat = S;
    auto Unit = C.compile(Src, Opts);
    if (!Unit) {
      ADD_FAILURE() << "compile failed:\n" << C.diagnostics().str();
      return "";
    }
    rt::RunResult R = C.run(*Unit);
    if (R.Outcome != rt::RunOutcome::Ok) {
      ADD_FAILURE() << "run failed: " << R.Error;
      return "";
    }
    return R.ResultText;
  }

  std::string runOutput(std::string_view Src, Strategy S = Strategy::Rg) {
    Compiler C;
    CompileOptions Opts;
    Opts.Strat = S;
    auto Unit = C.compile(Src, Opts);
    if (!Unit) {
      ADD_FAILURE() << "compile failed:\n" << C.diagnostics().str();
      return "";
    }
    rt::RunResult R = C.run(*Unit);
    EXPECT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
    return R.Output;
  }
};

TEST_F(PipelineTest, Arithmetic) {
  EXPECT_EQ(runResult("1 + 2 * 3"), "7");
}

TEST_F(PipelineTest, Strings) {
  EXPECT_EQ(runResult("\"oh\" ^ \"no\""), "\"ohno\"");
  EXPECT_EQ(runResult("size (\"abc\" ^ \"de\")"), "5");
  EXPECT_EQ(runResult("itos 42"), "\"42\"");
}

TEST_F(PipelineTest, Pairs) {
  EXPECT_EQ(runResult("(1 + 1, \"a\" ^ \"b\")"), "(2, \"ab\")");
  EXPECT_EQ(runResult("#2 (1, (2, 3))"), "(2, 3)");
}

TEST_F(PipelineTest, LetAndFunctions) {
  EXPECT_EQ(runResult("let val x = 21 in x + x end"), "42");
  EXPECT_EQ(runResult("fun double x = x + x\n;double 21"), "42");
  EXPECT_EQ(runResult("(fn x => x * 3) 14"), "42");
}

TEST_F(PipelineTest, Recursion) {
  EXPECT_EQ(
      runResult("fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\n"
                ";fib 15"),
      "610");
}

TEST_F(PipelineTest, Lists) {
  EXPECT_EQ(runResult("[1, 2, 3]"), "[1, 2, 3]");
  EXPECT_EQ(runResult("fun len xs = case xs of nil => 0 | _ :: t => "
                      "1 + len t\n;len [1,2,3,4]"),
            "4");
  EXPECT_EQ(runResult("fun mapd f xs = case xs of nil => nil "
                      "| h :: t => f h :: mapd f t\n"
                      ";mapd (fn x => x * 2) [1, 2, 3]"),
            "[2, 4, 6]");
}

TEST_F(PipelineTest, Polymorphism) {
  EXPECT_EQ(runResult("fun id x = x\n;(id 1, id \"a\")"), "(1, \"a\")");
  EXPECT_EQ(runResult("let val e = nil in (1 :: e, \"a\" :: e) end"),
            "([1], [\"a\"])");
}

TEST_F(PipelineTest, ComposeRunsUnderAllStrategies) {
  const char *Src =
      "fun compose fg = fn x => #1 fg (#2 fg x)\n"
      "val h = compose (fn x => x + 1, fn x => x * 2)\n"
      ";h 20";
  EXPECT_EQ(runResult(Src, Strategy::Rg), "41");
  EXPECT_EQ(runResult(Src, Strategy::RgMinus), "41");
  EXPECT_EQ(runResult(Src, Strategy::R), "41");
}

TEST_F(PipelineTest, HigherOrderCapture) {
  EXPECT_EQ(runResult("fun adder n = fn x => x + n\n"
                      "val add5 = adder 5\n"
                      ";add5 37"),
            "42");
}

TEST_F(PipelineTest, References) {
  EXPECT_EQ(runResult("let val r = ref 10 in (r := !r + 32; !r) end"),
            "42");
}

TEST_F(PipelineTest, Conditionals) {
  EXPECT_EQ(runResult("if 3 < 4 andalso true then \"y\" else \"n\""),
            "\"y\"");
  EXPECT_EQ(runResult("if false orelse 4 < 3 then 1 else 0"), "0");
}

TEST_F(PipelineTest, Exceptions) {
  EXPECT_EQ(runResult("exception E of int\n"
                      "(raise E 41) handle E v => v + 1"),
            "42");
  EXPECT_EQ(runResult("exception A\nexception B\n"
                      "((raise B) handle A => 1) handle B => 2"),
            "2");
}

TEST_F(PipelineTest, UncaughtException) {
  Compiler C;
  auto Unit = C.compile("exception E of int\nraise E 1");
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();
  rt::RunResult R = C.run(*Unit);
  EXPECT_EQ(R.Outcome, rt::RunOutcome::UncaughtException);
}

TEST_F(PipelineTest, Print) {
  EXPECT_EQ(runOutput("(print \"hello \"; print \"world\")"),
            "hello world");
}

TEST_F(PipelineTest, WorkTriggersCollections) {
  Compiler C;
  auto Unit = C.compile("work 100000");
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();
  rt::EvalOptions E;
  E.GcThresholdWords = 4096;
  rt::RunResult R = C.run(*Unit, E);
  EXPECT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_GT(R.Heap.GcCount, 0u);
}

TEST_F(PipelineTest, DivisionByZero) {
  Compiler C;
  auto Unit = C.compile("1 div 0");
  ASSERT_NE(Unit, nullptr);
  rt::RunResult R = C.run(*Unit);
  EXPECT_EQ(R.Outcome, rt::RunOutcome::RuntimeError);
}

TEST_F(PipelineTest, SchemePrintingForCompose) {
  Compiler C;
  auto Unit = C.compile("fun compose fg = fn x => #1 fg (#2 fg x)\n;()");
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();
  std::string S = C.schemeOf(*Unit, "compose");
  // Region-polymorphic with a spurious gamma carrying an arrow effect.
  EXPECT_NE(S.find("forall"), std::string::npos) << S;
  EXPECT_NE(S.find("r"), std::string::npos) << S;
}

TEST_F(PipelineTest, PolymorphicConstantsDuplicatePerUse) {
  // Polymorphic constant bindings (pairs/lists of constants) are
  // re-synthesised at each use's instance type.
  EXPECT_EQ(runResult("val p = (nil, nil)\n"
                      ";(1 :: #1 p, \"a\" :: #2 p)"),
            "([1], [\"a\"])");
  EXPECT_EQ(runResult("val row = [nil, nil]\n"
                      ";case row of nil => 0 | h :: _ => "
                      "(case h of nil => 7 | x :: _ => x)"),
            "7");
}

TEST_F(PipelineTest, PolymorphicNonConstantValIsRestricted) {
  // A genuinely polymorphic non-constant val (a pair holding a function)
  // is treated region-monomorphically with a warning, and a use at a
  // conflicting instance is a compile error rather than unsoundness.
  Compiler C;
  EXPECT_EQ(C.compile("val p = (fn x => x, nil)\n"
                      ";(#1 p 1, \"s\" :: #2 p)"),
            nullptr);
  bool Warned = false;
  for (const Diagnostic &D : C.diagnostics().all())
    Warned |= D.Kind == DiagKind::Warning &&
              D.Message.find("region-monomorphically") != std::string::npos;
  EXPECT_TRUE(Warned);
  EXPECT_TRUE(C.diagnostics().hasErrors());
}

TEST_F(PipelineTest, CompileErrorsProduceDiagnosticsNotUnits) {
  Compiler C;
  EXPECT_EQ(C.compile("1 +"), nullptr);
  EXPECT_TRUE(C.diagnostics().hasErrors());
  EXPECT_EQ(C.compile("xyz"), nullptr);
  EXPECT_TRUE(C.diagnostics().hasErrors());
  // The compiler is reusable after failures.
  auto Ok = C.compile("1 + 1");
  ASSERT_NE(Ok, nullptr);
  EXPECT_FALSE(C.diagnostics().hasErrors());
}

TEST_F(PipelineTest, CheckerValidatesAllStrategies) {
  const char *Src = "fun tw f = fn x => f (f x)\n;(tw (fn n => n + 1)) 40";
  for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R})
    EXPECT_EQ(runResult(Src, S), "42");
}

//===----------------------------------------------------------------------===//
// Phase manager
//===----------------------------------------------------------------------===//

TEST_F(PipelineTest, PhasesRunInRegistryOrder) {
  const std::vector<std::string> Expected = {
      "parse", "typecheck", "spurious", "infer", "check",
      "multiplicity", "kinds", "drops", "captures", "flatten"};
  EXPECT_EQ(Compiler::staticPhaseNames(), Expected);

  Compiler C;
  auto Unit = C.compile("1 + 2");
  ASSERT_NE(Unit, nullptr);
  ASSERT_EQ(Unit->Profiles.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I) {
    EXPECT_EQ(Unit->Profiles[I].Name, Expected[I]);
    // Captures is opt-in (CompileOptions::Captures, default off), so
    // its slot is present but Skipped; every other phase ran.
    EXPECT_EQ(Unit->Profiles[I].Skipped, Expected[I] == "captures");
  }
  // Profiles are also reachable without the unit (failed compiles).
  EXPECT_EQ(C.lastPhaseProfiles().size(), Expected.size());
}

TEST_F(PipelineTest, EarlyExitLeavesLaterPhasesUnrecorded) {
  Compiler C;
  ASSERT_EQ(C.compile("1 +"), nullptr); // parse error
  ASSERT_EQ(C.lastPhaseProfiles().size(), 1u);
  EXPECT_EQ(C.lastPhaseProfiles()[0].Name, "parse");
  EXPECT_GE(C.lastPhaseProfiles()[0].DiagnosticsEmitted, 1u);

  ASSERT_EQ(C.compile("1 + \"s\""), nullptr); // type error
  ASSERT_EQ(C.lastPhaseProfiles().size(), 2u);
  EXPECT_EQ(C.lastPhaseProfiles()[1].Name, "typecheck");
  EXPECT_GE(C.lastPhaseProfiles()[1].DiagnosticsEmitted, 1u);
}

TEST_F(PipelineTest, DisabledCheckerIsRecordedAsSkipped) {
  Compiler C;
  CompileOptions Opts;
  Opts.Check = false;
  auto Unit = C.compile("1 + 2", Opts);
  ASSERT_NE(Unit, nullptr);
  bool SawCheck = false;
  for (const PhaseProfile &P : Unit->Profiles)
    if (P.Name == "check") {
      SawCheck = true;
      EXPECT_TRUE(P.Skipped); // shape is stable, the work was not done
      EXPECT_EQ(P.WallNanos, 0u);
    } else if (P.Name != "captures") { // captures is opt-in, skipped too
      EXPECT_FALSE(P.Skipped);
    }
  EXPECT_TRUE(SawCheck);
}

TEST_F(PipelineTest, RunFillsRuntimePhaseProfile) {
  Compiler C;
  auto Unit = C.compile("work 100000");
  ASSERT_NE(Unit, nullptr);
  rt::EvalOptions E;
  E.GcThresholdWords = 4096;
  rt::RunResult R = C.run(*Unit, E);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.Phase.Name, Compiler::RunPhaseName);
  EXPECT_GT(R.Phase.WallNanos, 0u);
  // The runtime phase folds in the run's HeapStats.
  EXPECT_EQ(R.Phase.GcCount, R.Heap.GcCount);
  EXPECT_EQ(R.Phase.AllocWords, R.Heap.AllocWords);
  EXPECT_EQ(R.Phase.CopiedWords, R.Heap.CopiedWords);
  EXPECT_GT(R.Phase.GcCount, 0u);
}

TEST_F(PipelineTest, RunPhaseCarriesPerPauseGcRecords) {
  Compiler C;
  auto Unit = C.compile("work 100000");
  ASSERT_NE(Unit, nullptr);
  rt::EvalOptions E;
  E.GcThresholdWords = 4096;
  rt::RunResult R = C.run(*Unit, E);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;

  // One record per collection, folded into the runtime phase profile.
  ASSERT_GT(R.GcPauses.size(), 0u);
  EXPECT_EQ(R.GcPauses.size(), R.Heap.GcCount);
  ASSERT_EQ(R.Phase.GcPauses.size(), R.GcPauses.size());

  uint64_t CopiedSum = 0;
  for (size_t I = 0; I < R.GcPauses.size(); ++I) {
    const GcPauseRecord &G = R.GcPauses[I];
    EXPECT_GT(G.WallNanos, 0u) << "pause " << I;
    EXPECT_GE(G.StartNanos, R.Phase.StartNanos) << "pause " << I;
    // Pauses nest inside the run span and arrive in time order.
    EXPECT_LE(G.StartNanos + G.WallNanos,
              R.Phase.StartNanos + R.Phase.WallNanos)
        << "pause " << I;
    if (I > 0) {
      EXPECT_GE(G.StartNanos, R.GcPauses[I - 1].StartNanos);
    }
    EXPECT_GT(G.LiveRegions, 0u) << "pause " << I;
    CopiedSum += G.CopiedWords;
  }
  EXPECT_EQ(CopiedSum, R.Heap.CopiedWords);
}

TEST_F(PipelineTest, EvalOptionsPauseSinkSeesEveryPause) {
  class PauseCounter final : public TraceSink {
  public:
    void record(const PhaseProfile &) override {}
    void recordGcPause(const GcPauseRecord &G) override {
      ++Pauses;
      Copied += G.CopiedWords;
    }
    unsigned Pauses = 0;
    uint64_t Copied = 0;
  };
  PauseCounter Sink;
  Compiler C;
  auto Unit = C.compile("work 100000");
  ASSERT_NE(Unit, nullptr);
  rt::EvalOptions E;
  E.GcThresholdWords = 4096;
  E.PauseSink = &Sink;
  rt::RunResult R = C.run(*Unit, E);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(Sink.Pauses, R.GcPauses.size());
  EXPECT_EQ(Sink.Copied, R.Heap.CopiedWords);
}

TEST_F(PipelineTest, PhaseGovernorCutsOffAtPhaseBoundary) {
  /// Stops the pipeline right after the named phase executes.
  class StopAfter final : public PhaseGovernor {
  public:
    explicit StopAfter(std::string Phase) : Phase(std::move(Phase)) {}
    bool keepGoing(const PhaseProfile &P) override { return P.Name != Phase; }
    std::string Phase;
  };

  StopAfter G("typecheck");
  Compiler C;
  C.setPhaseGovernor(&G);
  EXPECT_EQ(C.compile("1 + 2"), nullptr);
  EXPECT_TRUE(C.wasCutOff());
  // A governor stop is not a diagnosed failure …
  EXPECT_FALSE(C.diagnostics().hasErrors());
  // … and the profile list ends at the phase that tripped it.
  ASSERT_FALSE(C.lastPhaseProfiles().empty());
  EXPECT_EQ(C.lastPhaseProfiles().back().Name, "typecheck");

  // Removing the governor restores normal compilation, and a compile
  // that finishes on its own clears the cut-off flag.
  C.setPhaseGovernor(nullptr);
  EXPECT_NE(C.compile("1 + 2"), nullptr);
  EXPECT_FALSE(C.wasCutOff());
}

TEST_F(PipelineTest, TraceSinkSeesEveryExecutedPhase) {
  class Names final : public TraceSink {
  public:
    void record(const PhaseProfile &P) override { Seen.push_back(P.Name); }
    std::vector<std::string> Seen;
  };
  Names Sink;
  Compiler C;
  C.setTraceSink(&Sink);
  auto Unit = C.compile("1 + 2");
  ASSERT_NE(Unit, nullptr);
  C.run(*Unit);
  std::vector<std::string> Expected = Compiler::staticPhaseNames();
  Expected.push_back(Compiler::RunPhaseName);
  EXPECT_EQ(Sink.Seen, Expected);
}

} // namespace
