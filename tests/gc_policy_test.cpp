//===- tests/gc_policy_test.cpp - Adaptive GC policy ----------------------===//
//
// The rt::GcPolicy contract: static mode reproduces the historical
// trigger and cadence bit-for-bit (zero knob moves), adaptive mode
// moves the threshold and major cadence from pause survival within the
// documented bounds, and — the property the service banks on — an
// adaptive run never changes what a program computes, only when its
// collector runs. Labelled `mem` in ctest and part of the TSan gate.
//
//===----------------------------------------------------------------------===//

#include "rt/GcPolicy.h"

#include "bench/Programs.h"
#include "core/Pipeline.h"

#include <gtest/gtest.h>

using namespace rml;
using namespace rml::rt;

namespace {

GcPauseRecord pause(uint64_t CopiedWords, bool Minor = false,
                    uint64_t WallNanos = 1000) {
  GcPauseRecord P;
  P.CopiedWords = CopiedWords;
  P.Minor = Minor;
  P.WallNanos = WallNanos;
  return P;
}

//===----------------------------------------------------------------------===//
// Policy units (deterministic pause histories).
//===----------------------------------------------------------------------===//

TEST(GcPolicyTest, StaticModeReproducesTheHistoricalTrigger) {
  GcPolicy P(/*Adaptive=*/false, /*ThresholdWords=*/1024,
             /*MinorsPerMajor=*/8, /*Generational=*/false,
             /*PauseBudgetNanos=*/0);
  EXPECT_FALSE(P.shouldCollect(1023));
  EXPECT_TRUE(P.shouldCollect(1024)); // allocSinceGc >= threshold
  EXPECT_TRUE(P.shouldCollect(9999));
  EXPECT_EQ(P.nextKind(), GcKind::Major); // non-generational: all major
}

TEST(GcPolicyTest, StaticModeNeverMovesAKnob) {
  GcPolicy P(false, 1024, 8, /*Generational=*/true, /*PauseBudget=*/0);
  // Feed extremes in both directions: nothing may move.
  EXPECT_FALSE(P.observe(pause(100000)));
  EXPECT_FALSE(P.observe(pause(0, /*Minor=*/true)));
  EXPECT_EQ(P.thresholdWords(), 1024u);
  EXPECT_EQ(P.minorsPerMajor(), 8u);
  GcPolicyStats S = P.stats();
  EXPECT_FALSE(S.Adaptive);
  EXPECT_EQ(S.ThresholdRaises + S.ThresholdDrops + S.BudgetBackoffs +
                S.MinorsPerMajorRaises + S.MinorsPerMajorDrops,
            0u);
  EXPECT_EQ(S.FinalThresholdWords, 1024u);
  EXPECT_EQ(S.FinalMinorsPerMajor, 8u);
}

TEST(GcPolicyTest, StaticModeStillCountsOverBudgetPauses) {
  GcPolicy P(false, 1024, 8, false, /*PauseBudget=*/500);
  EXPECT_FALSE(P.observe(pause(10, false, /*WallNanos=*/501)));
  EXPECT_FALSE(P.observe(pause(10, false, /*WallNanos=*/499)));
  GcPolicyStats S = P.stats();
  EXPECT_EQ(S.OverBudgetPauses, 1u); // observability without adaptation
  EXPECT_EQ(S.BudgetBackoffs, 0u);
  EXPECT_EQ(S.FinalThresholdWords, 1024u);
}

TEST(GcPolicyTest, SurvivalHeavyPausesDoubleTheThresholdUpToTheCap) {
  GcPolicy P(true, 1024, 8, false, 0);
  // CopiedWords >= threshold/2 doubles: 1024 -> 2048 -> ... -> 16384,
  // four raises to the 16x cap.
  for (int I = 0; I < 4; ++I)
    EXPECT_TRUE(P.observe(pause(P.thresholdWords()))); // full survival
  EXPECT_EQ(P.thresholdWords(), 16 * 1024u);
  EXPECT_FALSE(P.observe(pause(P.thresholdWords()))); // pinned at the cap
  EXPECT_EQ(P.thresholdWords(), 16 * 1024u);
  GcPolicyStats S = P.stats();
  EXPECT_EQ(S.ThresholdRaises, 4u);
  EXPECT_EQ(S.FinalThresholdWords, 16 * 1024u);
}

TEST(GcPolicyTest, GarbageHeavyPausesHalveTheThresholdDownToTheFloor) {
  GcPolicy P(true, 1024, 8, false, 0);
  ASSERT_TRUE(P.observe(pause(P.thresholdWords()))); // raise to 2048 first
  ASSERT_EQ(P.thresholdWords(), 2048u);
  // CopiedWords <= threshold/16 halves, never below the configured value.
  EXPECT_TRUE(P.observe(pause(0)));
  EXPECT_EQ(P.thresholdWords(), 1024u);
  EXPECT_FALSE(P.observe(pause(0))); // already at the floor
  EXPECT_EQ(P.thresholdWords(), 1024u);
  GcPolicyStats S = P.stats();
  EXPECT_EQ(S.ThresholdRaises, 1u);
  EXPECT_EQ(S.ThresholdDrops, 1u);
}

TEST(GcPolicyTest, MiddlingSurvivalLeavesTheThresholdAlone) {
  GcPolicy P(true, 1024, 8, false, 0);
  // Between the drop (<= T/16 = 64) and raise (>= T/2 = 512) bands.
  EXPECT_FALSE(P.observe(pause(256)));
  EXPECT_EQ(P.thresholdWords(), 1024u);
}

TEST(GcPolicyTest, BudgetOverrunsBackOffRegardlessOfSurvival) {
  GcPolicy P(true, 1024, 8, false, /*PauseBudget=*/500);
  // Garbage-heavy (would have dropped) but over budget: the budget rule
  // wins and the threshold doubles.
  EXPECT_TRUE(P.observe(pause(0, false, /*WallNanos=*/600)));
  EXPECT_EQ(P.thresholdWords(), 2048u);
  GcPolicyStats S = P.stats();
  EXPECT_EQ(S.BudgetBackoffs, 1u);
  EXPECT_EQ(S.OverBudgetPauses, 1u);
  EXPECT_EQ(S.ThresholdRaises, 0u);
  EXPECT_EQ(S.ThresholdDrops, 0u);
}

TEST(GcPolicyTest, GenerationalCadenceMatchesTheHistoricalModulo) {
  GcPolicy P(false, 1024, /*MinorsPerMajor=*/3, /*Generational=*/true, 0);
  // Exactly `++Tick % 3`: minor, minor, major, repeating.
  EXPECT_EQ(P.nextKind(), GcKind::Minor);
  EXPECT_EQ(P.nextKind(), GcKind::Minor);
  EXPECT_EQ(P.nextKind(), GcKind::Major);
  EXPECT_EQ(P.nextKind(), GcKind::Minor);
}

TEST(GcPolicyTest, CheapMinorsPushTheMajorOut) {
  GcPolicy P(true, 1024, /*MinorsPerMajor=*/4, true, 0);
  // Garbage-heavy minors double MPM, capped at 4x the configured value:
  // 4 -> 8 -> 16, two raises to the cap.
  for (int I = 0; I < 2; ++I)
    EXPECT_TRUE(P.observe(pause(0, /*Minor=*/true)));
  EXPECT_EQ(P.minorsPerMajor(), 16u);
  EXPECT_FALSE(P.observe(pause(0, /*Minor=*/true))); // pinned at the cap
  GcPolicyStats S = P.stats();
  EXPECT_EQ(S.MinorsPerMajorRaises, 2u);
  EXPECT_EQ(S.FinalMinorsPerMajor, 16u);
}

TEST(GcPolicyTest, SurvivorHeavyMinorsPullTheMajorIn) {
  GcPolicy P(true, 1024, /*MinorsPerMajor=*/8, true, 0);
  // Survival-heavy minors halve MPM down to max(2, initial/4) = 2.
  for (int I = 0; I < 4; ++I)
    P.observe(pause(P.thresholdWords(), /*Minor=*/true));
  EXPECT_EQ(P.minorsPerMajor(), 2u);
  EXPECT_GE(P.stats().MinorsPerMajorDrops, 2u);
}

TEST(GcPolicyTest, MajorPausesDoNotSteerTheCadence) {
  GcPolicy P(true, 1024, 8, true, 0);
  P.observe(pause(0, /*Minor=*/false)); // major: threshold rule only
  EXPECT_EQ(P.minorsPerMajor(), 8u);
  EXPECT_EQ(P.stats().MinorsPerMajorRaises, 0u);
}

//===----------------------------------------------------------------------===//
// Differential: adaptive mode never changes what a program computes.
//===----------------------------------------------------------------------===//

TEST(GcPolicyTest, AdaptiveRunsMatchStaticRunsOnEveryObservable) {
  Compiler C;
  for (const bench::BenchProgram &P : bench::benchmarkSuite()) {
    auto Unit = C.compile(P.Source);
    ASSERT_NE(Unit, nullptr) << P.Name << ": " << C.diagnostics().str();

    EvalOptions Static;
    Static.GcThresholdWords = 2048; // low: force collections
    RunResult Base = C.run(*Unit, Static);
    ASSERT_EQ(Base.Outcome, RunOutcome::Ok) << P.Name << ": " << Base.Error;

    EvalOptions Adaptive = Static;
    Adaptive.AdaptiveGc = true;
    RunResult R = C.run(*Unit, Adaptive);
    ASSERT_EQ(R.Outcome, RunOutcome::Ok) << P.Name << ": " << R.Error;

    // GC-independent observables are pinned; only pause shape (GcCount,
    // CopiedWords, the pause list) may differ.
    EXPECT_EQ(R.ResultText, Base.ResultText) << P.Name;
    EXPECT_EQ(R.Output, Base.Output) << P.Name;
    EXPECT_EQ(R.Steps, Base.Steps) << P.Name;
    EXPECT_EQ(R.Heap.AllocWords, Base.Heap.AllocWords) << P.Name;
    EXPECT_EQ(R.Heap.RegionsCreated, Base.Heap.RegionsCreated) << P.Name;
    EXPECT_EQ(R.Heap.FiniteRegionsCreated, Base.Heap.FiniteRegionsCreated)
        << P.Name;
    EXPECT_TRUE(R.Policy.Adaptive) << P.Name;
    EXPECT_FALSE(Base.Policy.Adaptive) << P.Name;
    EXPECT_EQ(Base.Policy.ThresholdRaises + Base.Policy.ThresholdDrops, 0u)
        << P.Name << ": static mode moved a knob";
  }
}

TEST(GcPolicyTest, TreeAndFlatMakeIdenticalAdaptiveDecisions) {
  // The adaptive rules consume only allocation word counts, which the
  // two walkers produce identically by construction — so tree and flat
  // must agree not just on results but on every policy decision.
  Compiler C;
  for (const bench::BenchProgram &P : bench::benchmarkSuite()) {
    auto Unit = C.compile(P.Source);
    ASSERT_NE(Unit, nullptr) << P.Name << ": " << C.diagnostics().str();
    ASSERT_NE(Unit->Flat, nullptr) << P.Name;

    EvalOptions E;
    E.GcThresholdWords = 2048;
    E.AdaptiveGc = true;
    RunResult Tree = C.run(*Unit, E);
    RunResult Flat = Compiler::runFlat(*Unit->Flat, E);
    ASSERT_EQ(Tree.Outcome, RunOutcome::Ok) << P.Name << ": " << Tree.Error;
    ASSERT_EQ(Flat.Outcome, RunOutcome::Ok) << P.Name << ": " << Flat.Error;

    EXPECT_EQ(Flat.ResultText, Tree.ResultText) << P.Name;
    EXPECT_EQ(Flat.Output, Tree.Output) << P.Name;
    EXPECT_EQ(Flat.Steps, Tree.Steps) << P.Name;
    EXPECT_EQ(Flat.Heap.AllocWords, Tree.Heap.AllocWords) << P.Name;
    EXPECT_EQ(Flat.Heap.GcCount, Tree.Heap.GcCount) << P.Name;
    EXPECT_EQ(Flat.Heap.CopiedWords, Tree.Heap.CopiedWords) << P.Name;
    EXPECT_EQ(Flat.Policy.ThresholdRaises, Tree.Policy.ThresholdRaises)
        << P.Name;
    EXPECT_EQ(Flat.Policy.ThresholdDrops, Tree.Policy.ThresholdDrops)
        << P.Name;
    EXPECT_EQ(Flat.Policy.FinalThresholdWords, Tree.Policy.FinalThresholdWords)
        << P.Name;
  }
}

TEST(GcPolicyTest, AdaptiveGenerationalRunsStayDifferentiallyClean) {
  const bench::BenchProgram *P = bench::findBenchmark("nrev");
  ASSERT_NE(P, nullptr);
  Compiler C;
  auto Unit = C.compile(P->Source);
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();

  EvalOptions Static;
  Static.GcThresholdWords = 2048;
  Static.Generational = true;
  Static.MinorsPerMajor = 4;
  RunResult Base = C.run(*Unit, Static);
  ASSERT_EQ(Base.Outcome, RunOutcome::Ok) << Base.Error;
  ASSERT_GT(Base.Heap.GcCount, 0u);

  EvalOptions Adaptive = Static;
  Adaptive.AdaptiveGc = true;
  RunResult Tree = C.run(*Unit, Adaptive);
  RunResult Flat = Compiler::runFlat(*Unit->Flat, Adaptive);
  ASSERT_EQ(Tree.Outcome, RunOutcome::Ok) << Tree.Error;
  ASSERT_EQ(Flat.Outcome, RunOutcome::Ok) << Flat.Error;

  EXPECT_EQ(Tree.ResultText, Base.ResultText);
  EXPECT_EQ(Tree.Output, Base.Output);
  EXPECT_EQ(Tree.Steps, Base.Steps);
  EXPECT_EQ(Tree.Heap.AllocWords, Base.Heap.AllocWords);
  // Tree and flat agree on the full generational decision stream.
  EXPECT_EQ(Flat.Heap.MinorGcCount, Tree.Heap.MinorGcCount);
  EXPECT_EQ(Flat.Heap.MajorGcCount, Tree.Heap.MajorGcCount);
  EXPECT_EQ(Flat.Policy.FinalMinorsPerMajor, Tree.Policy.FinalMinorsPerMajor);
}

TEST(GcPolicyTest, PauseBudgetBacksCollectionFrequencyOff) {
  const bench::BenchProgram *P = bench::findBenchmark("nrev");
  ASSERT_NE(P, nullptr);
  Compiler C;
  auto Unit = C.compile(P->Source);
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();

  EvalOptions Static;
  Static.GcThresholdWords = 2048;
  RunResult Base = C.run(*Unit, Static);
  ASSERT_EQ(Base.Outcome, RunOutcome::Ok) << Base.Error;
  ASSERT_GT(Base.Heap.GcCount, 1u);

  // A 1ns budget is overrun by every real pause: the policy must back
  // off (fewer collections than static), and the results still match.
  EvalOptions Budgeted = Static;
  Budgeted.AdaptiveGc = true;
  Budgeted.GcPauseBudgetNanos = 1;
  RunResult R = C.run(*Unit, Budgeted);
  ASSERT_EQ(R.Outcome, RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.ResultText, Base.ResultText);
  EXPECT_EQ(R.Output, Base.Output);
  EXPECT_EQ(R.Steps, Base.Steps);
  EXPECT_GT(R.Policy.OverBudgetPauses, 0u);
  EXPECT_GT(R.Policy.BudgetBackoffs, 0u);
  EXPECT_LT(R.Heap.GcCount, Base.Heap.GcCount);
  EXPECT_GT(R.Policy.FinalThresholdWords, Static.GcThresholdWords);
}

} // namespace
