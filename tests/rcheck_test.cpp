//===- tests/rcheck_test.cpp - Region type checker unit tests -------------===//
//
// Exercises the Figure 4 typing rules directly on hand-built
// region-annotated terms: acceptance of well-annotated programs,
// rejection of [TeReg] escapes, latent-effect undershoots, arrow-effect
// basis violations, and the difference between GcSafety::On and ::Off —
// the checker-level reading of the paper's contribution.
//
//===----------------------------------------------------------------------===//

#include "rcheck/Check.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class RCheckTest : public ::testing::Test {
protected:
  RegionVar r(uint32_t I) { return RegionVar(I); }
  EffectVar e(uint32_t I) { return EffectVar(I); }

  Symbol sym(const char *S) { return Names.intern(S); }

  RExpr *intLit(int64_t V) {
    RExpr *E = EA.make(RExpr::Kind::IntLit);
    E->IntValue = V;
    return E;
  }
  RExpr *var(const char *S) {
    RExpr *E = EA.make(RExpr::Kind::Var);
    E->Name = sym(S);
    return E;
  }
  RExpr *strAt(const char *S, RegionVar Rho) {
    RExpr *E = EA.make(RExpr::Kind::StrE);
    E->StrValue = S;
    E->AtRho = Rho;
    return E;
  }
  RExpr *lam(const char *Param, const Mu *ParamMu, ArrowEff Nu,
             const RExpr *Body, RegionVar Rho) {
    RExpr *E = EA.make(RExpr::Kind::Lam);
    E->Param = sym(Param);
    E->ParamMu = ParamMu;
    E->LatentNu = std::move(Nu);
    E->A = Body;
    E->AtRho = Rho;
    return E;
  }
  RExpr *let(const char *Name, const RExpr *Rhs, const RExpr *Body) {
    RExpr *E = EA.make(RExpr::Kind::Let);
    E->Name = sym(Name);
    E->A = Rhs;
    E->B = Body;
    return E;
  }
  RExpr *letregion(RegionVar Rho, const RExpr *Body) {
    RExpr *E = EA.make(RExpr::Kind::LetRegion);
    E->BoundRho = Rho;
    E->A = Body;
    return E;
  }
  RExpr *pairAt(const RExpr *X, const RExpr *Y, RegionVar Rho) {
    RExpr *E = EA.make(RExpr::Kind::PairE);
    E->A = X;
    E->B = Y;
    E->AtRho = Rho;
    return E;
  }
  RExpr *app(const RExpr *F, const RExpr *X) {
    RExpr *E = EA.make(RExpr::Kind::App);
    E->A = F;
    E->B = X;
    return E;
  }

  std::optional<CheckResult> check(const RExpr *E,
                                   GcSafety S = GcSafety::On) {
    Diags.clear();
    RProgram P;
    P.Root = E;
    return checkRProgram(P, A, Names, Diags, S);
  }

  RTypeArena A;
  RExprArena EA;
  Interner Names;
  DiagnosticEngine Diags;
};

TEST_F(RCheckTest, Literals) {
  std::optional<CheckResult> R = check(intLit(5));
  ASSERT_TRUE(R.has_value()) << Diags.str();
  EXPECT_TRUE(R->Type.isMu());
  EXPECT_EQ(R->Type.AsMu->K, Mu::Kind::Int);
  EXPECT_TRUE(R->Phi.isEmpty());
}

TEST_F(RCheckTest, StringAllocationHasPutEffect) {
  std::optional<CheckResult> R = check(strAt("x", r(0)));
  ASSERT_TRUE(R.has_value()) << Diags.str();
  EXPECT_TRUE(R->Phi.contains(r(0)));
}

TEST_F(RCheckTest, UnboundVariableRejected) {
  EXPECT_FALSE(check(var("nope")).has_value());
}

TEST_F(RCheckTest, LetregionMasksLocalRegion) {
  // letregion r1 in #1 ((1, 2) at r1): effect {} after masking... the
  // projection reads r1 but the result is unboxed, so r1 is masked.
  RExpr *Sel = EA.make(RExpr::Kind::Sel);
  Sel->SelIndex = 1;
  Sel->A = pairAt(intLit(1), intLit(2), r(1));
  std::optional<CheckResult> R = check(letregion(r(1), Sel));
  ASSERT_TRUE(R.has_value()) << Diags.str();
  EXPECT_TRUE(R->Phi.isEmpty());
}

TEST_F(RCheckTest, LetregionEscapeThroughResultRejected) {
  // letregion r1 in "x" at r1 — the result lives in r1: [TeReg] fails.
  EXPECT_FALSE(check(letregion(r(1), strAt("x", r(1)))).has_value());
  EXPECT_NE(Diags.str().find("TeReg"), std::string::npos);
}

TEST_F(RCheckTest, LetregionEscapeThroughEnvironmentRejected) {
  // let s = "x" at r1 in letregion r1 in s — r1 free in the env binding.
  const RExpr *Bad =
      let("s", strAt("x", r(1)), letregion(r(1), var("s")));
  EXPECT_FALSE(check(Bad).has_value());
}

TEST_F(RCheckTest, IdentityLambdaChecks) {
  const RExpr *Id =
      lam("x", A.intTy(), ArrowEff(e(1), Effect{}), var("x"), r(0));
  std::optional<CheckResult> R = check(Id);
  ASSERT_TRUE(R.has_value()) << Diags.str();
  ASSERT_TRUE(R->Type.isMu());
  EXPECT_EQ(R->Type.AsMu->T->K, Tau::Kind::Arrow);
  EXPECT_TRUE(R->Phi.contains(r(0)));
}

TEST_F(RCheckTest, LatentEffectMustCoverBodyEffect) {
  // fn x => "s" at r1, with declared latent effect {}: rejected.
  const RExpr *Bad = lam("x", A.intTy(), ArrowEff(e(1), Effect{}),
                         strAt("s", r(1)), r(0));
  EXPECT_FALSE(check(Bad).has_value());
  EXPECT_NE(Diags.str().find("latent"), std::string::npos);

  // With {r1} declared it checks.
  const RExpr *Good =
      lam("x", A.intTy(), ArrowEff(e(1), Effect{AtomicEffect(r(1))}),
          strAt("s", r(1)), r(0));
  EXPECT_TRUE(check(Good).has_value()) << Diags.str();
}

TEST_F(RCheckTest, ApplicationTypesMustMatch) {
  const RExpr *Id =
      lam("x", A.intTy(), ArrowEff(e(1), Effect{}), var("x"), r(0));
  EXPECT_TRUE(check(app(Id, intLit(3))).has_value()) << Diags.str();

  const RExpr *Id2 =
      lam("x", A.intTy(), ArrowEff(e(2), Effect{}), var("x"), r(0));
  EXPECT_FALSE(check(app(Id2, strAt("s", r(0)))).has_value());
}

TEST_F(RCheckTest, ApplicationEffectIncludesHandleAndClosureRegion) {
  const RExpr *Id =
      lam("x", A.intTy(), ArrowEff(e(1), Effect{}), var("x"), r(0));
  std::optional<CheckResult> R = check(app(Id, intLit(3)));
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->Phi.contains(e(1)));
  EXPECT_TRUE(R->Phi.contains(r(0)));
}

TEST_F(RCheckTest, GcSafetyCatchesDeadCapture) {
  // let s = "x" at r1 in
  //   let h = (fn u => 0) at r0   -- captures s? make body mention s:
  //   (fn u => let d = s in 0) at r0 with latent {}:
  // under GcSafety::On the capture of s (type (string, r1)) requires r1
  // in frev of the lambda type; with latent {} it is not.
  const RExpr *Capture =
      lam("u", A.unitTy(), ArrowEff(e(1), Effect{}),
          let("d", var("s"), intLit(0)), r(0));
  const RExpr *Prog = let("s", strAt("x", r(1)), EA.clone(Capture));
  EXPECT_FALSE(check(Prog, GcSafety::On).has_value());
  EXPECT_NE(Diags.str().find("GC-safety"), std::string::npos);
  // The Tofte-Talpin reading accepts it (dangling pointers permitted).
  EXPECT_TRUE(check(Prog, GcSafety::Off).has_value()) << Diags.str();
  // And with r1 in the latent effect, the GC-safe system accepts too.
  const RExpr *CaptureOk =
      lam("u", A.unitTy(), ArrowEff(e(1), Effect{AtomicEffect(r(1))}),
          let("d", var("s"), intLit(0)), r(0));
  const RExpr *ProgOk = let("s", strAt("x", r(1)), EA.clone(CaptureOk));
  EXPECT_TRUE(check(ProgOk, GcSafety::On).has_value()) << Diags.str();
}

TEST_F(RCheckTest, ArrowEffectBasisMustBeFunctional) {
  // The same handle e1 with two different denotations (Section 3.5).
  const RExpr *L1 =
      lam("x", A.intTy(), ArrowEff(e(1), Effect{}), var("x"), r(0));
  const RExpr *L2 =
      lam("y", A.intTy(), ArrowEff(e(1), Effect{AtomicEffect(r(0))}),
          strAt("s", r(0)), r(0));
  // Wrong latent type for L2's body — fix body type: string body means
  // arrow int->string; that's fine, only the handle clash matters.
  const RExpr *Prog = let("f", L1, let("g", L2, intLit(0)));
  EXPECT_FALSE(check(Prog).has_value());
  EXPECT_NE(Diags.str().find("functional"), std::string::npos);
}

TEST_F(RCheckTest, IfBranchesMustAgree) {
  RExpr *Cond = EA.make(RExpr::Kind::BoolLit);
  Cond->BoolValue = true;
  RExpr *If = EA.make(RExpr::Kind::If);
  If->A = Cond;
  If->B = intLit(1);
  If->C = strAt("s", r(0));
  EXPECT_FALSE(check(If).has_value());
}

TEST_F(RCheckTest, ConsMustShareSpineRegion) {
  RExpr *Nil = EA.make(RExpr::Kind::NilVal);
  Nil->MuOf = A.boxed(A.listTy(A.intTy()), r(1));
  RExpr *Cons = EA.make(RExpr::Kind::ConsE);
  Cons->A = intLit(1);
  Cons->B = Nil;
  Cons->AtRho = r(2); // wrong: spine is r1
  EXPECT_FALSE(check(Cons).has_value());
  Cons->AtRho = r(1);
  Diags.clear();
  RProgram P;
  P.Root = Cons;
  EXPECT_TRUE(checkRProgram(P, A, Names, Diags).has_value()) << Diags.str();
}

TEST_F(RCheckTest, FunBindMustNotQuantifyContextRegions) {
  // fun f [r1] ... at r0 where r1 occurs in a captured binding's type.
  RExpr *Fun = EA.make(RExpr::Kind::FunBind);
  Fun->Name = sym("f");
  Fun->Param = sym("x");
  Fun->A = let("d", var("s"), intLit(0));
  Fun->AtRho = r(0);
  Fun->Sigma.QRegions = {r(1)};
  Fun->Sigma.Body = A.arrowTy(
      A.intTy(), ArrowEff(e(1), Effect{AtomicEffect(r(1))}), A.intTy());
  const RExpr *Prog = let("s", strAt("cap", r(1)), Fun);
  EXPECT_FALSE(check(Prog).has_value());
  EXPECT_NE(Diags.str().find("quantifies"), std::string::npos);
}

TEST_F(RCheckTest, RegionApplicationOfMonomorphicValueRejected) {
  RExpr *RApp = EA.make(RExpr::Kind::RApp);
  RApp->A = intLit(1);
  RApp->AtRho = r(0);
  RApp->MuOf = A.boxed(
      A.arrowTy(A.intTy(), ArrowEff(e(1), Effect{}), A.intTy()), r(0));
  EXPECT_FALSE(check(RApp).has_value());
}

TEST_F(RCheckTest, RaiseRequiresRecordedResultType) {
  RExpr *Con = EA.make(RExpr::Kind::ExnConE);
  Con->ExnName = sym("E");
  Con->AtRho = RegionVar::global();
  Con->MuOf = A.boxed(A.exnTy(), RegionVar::global());
  RExpr *Raise = EA.make(RExpr::Kind::Raise);
  Raise->A = Con;
  // No MuOf: the checker cannot synthesise the result type.
  Diags.clear();
  RProgram P;
  P.Root = Raise;
  std::vector<std::pair<Symbol, const Mu *>> Sigs{{sym("E"), nullptr}};
  EXPECT_FALSE(
      checkRExpr(Raise, {}, {}, Sigs, A, Names, Diags).has_value());
}

TEST_F(RCheckTest, ProjectionFromNonPairRejected) {
  RExpr *Sel = EA.make(RExpr::Kind::Sel);
  Sel->SelIndex = 1;
  Sel->A = strAt("s", r(0));
  EXPECT_FALSE(check(Sel).has_value());
}

TEST_F(RCheckTest, SequencePropagatesLastType) {
  RExpr *Seq = EA.make(RExpr::Kind::Seq);
  Seq->Items.push_back(intLit(1));
  Seq->Items.push_back(strAt("s", r(0)));
  std::optional<CheckResult> R = check(Seq);
  ASSERT_TRUE(R.has_value());
  ASSERT_TRUE(R->Type.isMu());
  EXPECT_EQ(R->Type.AsMu->T->K, Tau::Kind::String);
}

} // namespace
