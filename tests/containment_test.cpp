//===- tests/containment_test.cpp - Type/value containment tests ----------===//
//
// The containment judgements of Sections 3.2 and 3.7: Omega |- mu : phi,
// scheme containment, and the value containment of Figure 3 — including
// the type-variable case that distinguishes the paper's system from its
// predecessors.
//
//===----------------------------------------------------------------------===//

#include "region/Containment.h"

#include "rcheck/Check.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class ContainmentTest : public ::testing::Test {
protected:
  RegionVar r(uint32_t I) { return RegionVar(I); }
  EffectVar e(uint32_t I) { return EffectVar(I); }
  TyVarId a(uint32_t I) { return TyVarId(I); }
  Effect phi(std::initializer_list<AtomicEffect> L) { return Effect(L); }

  RTypeArena A;
  RExprArena EA;
  TyVarCtx Empty;
};

TEST_F(ContainmentTest, ScalarsAlwaysContained) {
  EXPECT_TRUE(typeContained(Empty, A.intTy(), Effect()));
  EXPECT_TRUE(typeContained(Empty, A.boolTy(), Effect()));
  EXPECT_TRUE(typeContained(Empty, A.unitTy(), Effect()));
}

TEST_F(ContainmentTest, BoxedRequiresRegion) {
  const Mu *S = A.boxed(A.stringTy(), r(1));
  EXPECT_TRUE(typeContained(Empty, S, phi({AtomicEffect(r(1))})));
  EXPECT_FALSE(typeContained(Empty, S, Effect()));
  EXPECT_FALSE(typeContained(Empty, S, phi({AtomicEffect(r(2))})));
}

TEST_F(ContainmentTest, PairRequiresComponentsAndRegion) {
  const Mu *P = A.boxed(
      A.pairTy(A.boxed(A.stringTy(), r(2)), A.intTy()), r(1));
  EXPECT_TRUE(typeContained(
      Empty, P, phi({AtomicEffect(r(1)), AtomicEffect(r(2))})));
  EXPECT_FALSE(typeContained(Empty, P, phi({AtomicEffect(r(1))})));
}

TEST_F(ContainmentTest, ArrowRequiresLatentEffectAndHandle) {
  // (int -e1.{r2}-> int, r1) : phi needs {r1, e1} u {r2} in phi.
  ArrowEff Nu(e(1), Effect{AtomicEffect(r(2))});
  const Mu *F = A.boxed(A.arrowTy(A.intTy(), Nu, A.intTy()), r(1));
  Effect Full =
      phi({AtomicEffect(r(1)), AtomicEffect(r(2)), AtomicEffect(e(1))});
  EXPECT_TRUE(typeContained(Empty, F, Full));
  EXPECT_FALSE(typeContained(
      Empty, F, phi({AtomicEffect(r(1)), AtomicEffect(r(2))}))); // no e1
  EXPECT_FALSE(typeContained(
      Empty, F, phi({AtomicEffect(r(1)), AtomicEffect(e(1))}))); // no r2
}

TEST_F(ContainmentTest, TyVarDelegatesToItsArrowEffect) {
  // Omega |- alpha : phi iff frev(Omega(alpha)) subset phi — the device
  // that makes instantiated regions visible (Section 3.2).
  TyVarCtx Omega;
  Omega.bind(a(0), ArrowEff(e(1), Effect{AtomicEffect(r(5))}));
  const Mu *V = A.tyVar(a(0));
  EXPECT_TRUE(typeContained(
      Omega, V, phi({AtomicEffect(e(1)), AtomicEffect(r(5))})));
  EXPECT_FALSE(typeContained(Omega, V, phi({AtomicEffect(e(1))})));
  EXPECT_FALSE(typeContained(Omega, V, phi({AtomicEffect(r(5))})));
}

TEST_F(ContainmentTest, PlainTyVarOnlyContainedWhenAllowed) {
  TyVarCtx Omega;
  Omega.bindPlain(a(0));
  const Mu *V = A.tyVar(a(0));
  EXPECT_FALSE(typeContained(Omega, V, Effect()));
  std::vector<TyVarId> Ok{a(0)};
  EXPECT_TRUE(typeContained(Omega, V, Effect(), &Ok));
  std::vector<TyVarId> Other{a(1)};
  EXPECT_FALSE(typeContained(Omega, V, Effect(), &Other));
}

TEST_F(ContainmentTest, UnboundTyVarNeverContained) {
  EXPECT_FALSE(typeContained(Empty, A.tyVar(a(7)), Effect()));
}

TEST_F(ContainmentTest, EffectExtensibility) {
  // If Omega |- mu : phi and phi subset phi' then Omega |- mu : phi'.
  const Mu *P = A.boxed(A.pairTy(A.intTy(), A.intTy()), r(1));
  Effect Small = phi({AtomicEffect(r(1))});
  Effect Big = Small.unionWith(phi({AtomicEffect(r(9)), AtomicEffect(e(3))}));
  EXPECT_TRUE(typeContained(Empty, P, Small));
  EXPECT_TRUE(typeContained(Empty, P, Big));
}

TEST_F(ContainmentTest, ContainmentImpliesFrevSubset) {
  // Proposition 2: Omega |- o : phi implies frev(o) subset phi.
  ArrowEff Nu(e(1), Effect{AtomicEffect(r(2))});
  const Mu *F = A.boxed(A.arrowTy(A.boxed(A.stringTy(), r(3)), Nu,
                                  A.intTy()),
                        r(1));
  Effect Phi = phi({AtomicEffect(r(1)), AtomicEffect(r(2)),
                    AtomicEffect(r(3)), AtomicEffect(e(1))});
  ASSERT_TRUE(typeContained(Empty, F, Phi));
  EXPECT_TRUE(frevOf(F).subsetOf(Phi));
}

TEST_F(ContainmentTest, SchemeContainmentMasksBoundVars) {
  // (forall r2 e1. int -e1.{r2}-> int, r0) : {r0} holds: the bound
  // variables are unioned into the premise effect.
  RScheme S;
  S.QRegions = {r(2)};
  S.QEffects = {e(1)};
  S.Body = A.arrowTy(A.intTy(), ArrowEff(e(1), Effect{AtomicEffect(r(2))}),
                     A.intTy());
  EXPECT_TRUE(piContained(Empty, Pi(S, r(0)), phi({AtomicEffect(r(0))})));
  EXPECT_FALSE(piContained(Empty, Pi(S, r(0)), Effect())); // place missing
}

TEST_F(ContainmentTest, SchemeContainmentRequiresFreeAtoms) {
  // A free region in the scheme body must be in phi.
  RScheme S;
  S.QEffects = {e(1)};
  S.Body = A.arrowTy(A.intTy(), ArrowEff(e(1), Effect{AtomicEffect(r(9))}),
                     A.intTy());
  EXPECT_FALSE(piContained(Empty, Pi(S, r(0)), phi({AtomicEffect(r(0))})));
  EXPECT_TRUE(piContained(
      Empty, Pi(S, r(0)), phi({AtomicEffect(r(0)), AtomicEffect(r(9))})));
}

TEST_F(ContainmentTest, SchemeBoundPlainTyVarsAdmissible) {
  // Scheme-bound plain variables are binders: a captured polymorphic
  // binding whose scheme quantifies them is containable.
  RScheme S;
  S.Delta.bindPlain(a(0));
  S.QEffects = {e(1)};
  S.Body = A.arrowTy(A.tyVar(a(0)), ArrowEff(e(1), Effect{}), A.tyVar(a(0)));
  EXPECT_TRUE(piContained(Empty, Pi(S, r(0)), phi({AtomicEffect(r(0))})));
}

//===----------------------------------------------------------------------===//
// Value containment (Figure 3)
//===----------------------------------------------------------------------===//

class ValueContainmentTest : public ContainmentTest {
protected:
  RExpr *intVal(int64_t V) {
    RExpr *E = EA.make(RExpr::Kind::IntLit);
    E->IntValue = V;
    return E;
  }
  RExpr *strVal(const char *S, RegionVar Rho) {
    RExpr *E = EA.make(RExpr::Kind::StrVal);
    E->StrValue = S;
    E->AtRho = Rho;
    return E;
  }
  RExpr *pairVal(const RExpr *X, const RExpr *Y, RegionVar Rho) {
    RExpr *E = EA.make(RExpr::Kind::PairVal);
    E->A = X;
    E->B = Y;
    E->AtRho = Rho;
    return E;
  }
};

TEST_F(ValueContainmentTest, UnboxedValuesAlwaysContained) {
  EXPECT_TRUE(valueContained(Effect(), intVal(7)));
  EXPECT_TRUE(valueContained(Effect(), EA.make(RExpr::Kind::NilVal)));
}

TEST_F(ValueContainmentTest, BoxedValuesNeedTheirRegion) {
  EXPECT_TRUE(valueContained(phi({AtomicEffect(r(1))}), strVal("x", r(1))));
  EXPECT_FALSE(valueContained(Effect(), strVal("x", r(1))));
}

TEST_F(ValueContainmentTest, PairsRecurse) {
  const RExpr *P = pairVal(strVal("a", r(2)), intVal(1), r(1));
  EXPECT_TRUE(valueContained(
      phi({AtomicEffect(r(1)), AtomicEffect(r(2))}), P));
  EXPECT_FALSE(valueContained(phi({AtomicEffect(r(1))}), P));
}

TEST_F(ValueContainmentTest, ClosuresContainTheirBodyValues) {
  // <fn x => <"s">^r2>^r1 : the embedded string value must be contained.
  RExpr *Clos = EA.make(RExpr::Kind::ClosVal);
  Clos->Param = Symbol(0);
  Clos->A = strVal("s", r(2));
  Clos->AtRho = r(1);
  EXPECT_TRUE(valueContained(
      phi({AtomicEffect(r(1)), AtomicEffect(r(2))}), Clos));
  EXPECT_FALSE(valueContained(phi({AtomicEffect(r(1))}), Clos));
}

TEST_F(ValueContainmentTest, LetregionBindersMustBeFresh) {
  // phi |=v letregion rho in e requires rho not in phi.
  RExpr *Inner = EA.make(RExpr::Kind::LetRegion);
  Inner->BoundRho = r(1);
  Inner->A = intVal(0);
  EXPECT_TRUE(exprValuesContained(Effect(), Inner));
  EXPECT_FALSE(exprValuesContained(phi({AtomicEffect(r(1))}), Inner));
}

TEST_F(ValueContainmentTest, FunValQuantifiedRegionsDisjoint) {
  // phi |= <fun f [rhos] x = e>^rho requires {rhos} cap phi = {}.
  RExpr *Fun = EA.make(RExpr::Kind::FunVal);
  Fun->AtRho = r(1);
  Fun->Sigma.QRegions = {r(2)};
  Fun->A = intVal(0);
  EXPECT_TRUE(valueContained(phi({AtomicEffect(r(1))}), Fun));
  EXPECT_FALSE(valueContained(
      phi({AtomicEffect(r(1)), AtomicEffect(r(2))}), Fun));
}

} // namespace
