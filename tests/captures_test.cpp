//===- tests/captures_test.cpp - Capture-tracking analysis mode -----------===//
//
// The capture-tracking analysis end-to-end: the per-closure value vs
// latent-effect split, the rendered report's byte-stability across the
// tree and flat forms, the compile-cache key separation of the Captures
// option, persistence through the disk tier (including the version-3
// fail-closed rules), the CaptureQuery wire kind, and the service-level
// differential — a capture query answered from a warm --cache-dir
// restart is byte-identical to the cold compile with every static phase
// reported Skipped. Labelled `capture` in ctest and expected to be
// clean under -DRML_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "rinfer/Captures.h"

#include "flat/Flat.h"
#include "net/Protocol.h"
#include "service/DiskCache.h"
#include "service/Service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace rml;
using namespace rml::service;

namespace fs = std::filesystem;

namespace {

/// A polymorphic program whose inner lambda captures a boxed pair, so
/// the capture sets are non-trivial under every strategy.
const char *CaptureProgram = R"(
fun compose fg = fn x => #1 fg (#2 fg x)
fun make p = fn x => #1 p + x
;let val h = compose (fn a => a + 1, fn b => b * 2)
 in make (3, 4) (h 5) end
)";

struct ScratchDir {
  fs::path Path;
  explicit ScratchDir(const std::string &Name) {
    Path = fs::path(::testing::TempDir()) / ("rml_capture_" + Name);
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

std::unique_ptr<CompiledUnit> compileCaptures(Compiler &C,
                                              std::string_view Source,
                                              Strategy S = Strategy::Rg) {
  CompileOptions Opts;
  Opts.Strat = S;
  Opts.Captures = true;
  return C.compile(Source, Opts);
}

//===----------------------------------------------------------------------===//
// The analysis
//===----------------------------------------------------------------------===//

TEST(CapturesTest, AnalysisSplitsValueAndLatentCapture) {
  Compiler C;
  auto Unit = compileCaptures(C, CaptureProgram);
  ASSERT_NE(Unit, nullptr);
  ASSERT_TRUE(Unit->Captures.has_value());

  // One entry per closure, in the flattener's function pre-order —
  // the table is parallel to the flat unit's Fns table.
  ASSERT_NE(Unit->Flat, nullptr);
  ASSERT_EQ(Unit->Captures->Closures.size(), Unit->Flat->Fns.size());

  // The lambda `fn x => #1 p + x` value-captures p, whose pair type
  // lives in some region — at least one closure has a non-empty
  // value-capture set.
  bool SawValueCapture = false;
  for (const ClosureCapture &CC : Unit->Captures->Closures) {
    SawValueCapture |= !CC.ViaValue.empty();
    // Sets are sorted, deduplicated, and never contain the global
    // region (id 0).
    EXPECT_TRUE(std::is_sorted(CC.ViaValue.begin(), CC.ViaValue.end()));
    EXPECT_TRUE(std::is_sorted(CC.ViaEffect.begin(), CC.ViaEffect.end()));
    EXPECT_EQ(std::count(CC.ViaValue.begin(), CC.ViaValue.end(), 0u), 0);
    EXPECT_EQ(std::count(CC.ViaEffect.begin(), CC.ViaEffect.end(), 0u), 0);
  }
  EXPECT_TRUE(SawValueCapture);
}

TEST(CapturesTest, EscapedColumnFlagsTheFigure1DanglingRegion) {
  // The paper's Figure 1: `fn v => x` holds the string x in its closure
  // record (value capture) but applying it touches no region, so the
  // latent effect is empty — the string's region is kept alive by
  // containment alone. The escaped column must flag exactly that
  // closure: under rg containment pins the region outside the
  // closure's lifetime, under rg- this is the region the run dies
  // tracing into.
  const char *Figure1 = R"(
fun compose fg = fn x => #1 fg (#2 fg x)
fun run u =
  let val h = compose (let val x = "oh" ^ "no"
                       in (fn _ => (), fn v => x) end)
      val w = work 20000
  in h () end
;run ()
)";
  for (Strategy S : {Strategy::Rg, Strategy::RgMinus}) {
    Compiler C;
    auto Unit = compileCaptures(C, Figure1, S);
    ASSERT_NE(Unit, nullptr);
    size_t EscapedClosures = 0;
    for (const ClosureCapture &CC : Unit->Captures->Closures) {
      std::vector<uint32_t> Residue;
      std::set_difference(CC.ViaValue.begin(), CC.ViaValue.end(),
                          CC.ViaEffect.begin(), CC.ViaEffect.end(),
                          std::back_inserter(Residue));
      if (!Residue.empty()) {
        ++EscapedClosures;
        // It is the string-returning lambda: captures by value, applies
        // effect-free.
        EXPECT_FALSE(CC.IsFun);
        EXPECT_TRUE(CC.ViaEffect.empty());
      }
    }
    EXPECT_EQ(EscapedClosures, 1u) << "strategy " << strategyName(S);
    std::string Report = C.captureReport(*Unit);
    EXPECT_NE(Report.find(" escaped={"), std::string::npos) << Report;
    EXPECT_NE(Report.find("escaped=1\n"), std::string::npos) << Report;
  }
}

TEST(CapturesTest, ReportShapeAndDeterminism) {
  Compiler C;
  auto Unit = compileCaptures(C, CaptureProgram);
  ASSERT_NE(Unit, nullptr);
  std::string Report = C.captureReport(*Unit);
  EXPECT_EQ(Report.rfind("captures v1 strategy=rg closures=", 0), 0u)
      << Report;
  EXPECT_NE(Report.find("\ntotal closures="), std::string::npos) << Report;
  EXPECT_NE(Report.find("fun compose(fg)"), std::string::npos) << Report;
  EXPECT_NE(Report.find("lam(x)"), std::string::npos) << Report;

  // Deterministic: a second independent compile renders the same bytes.
  Compiler C2;
  auto Unit2 = compileCaptures(C2, CaptureProgram);
  ASSERT_NE(Unit2, nullptr);
  EXPECT_EQ(C2.captureReport(*Unit2), Report);

  // A closure-free program still reports (header + totals, no rows).
  Compiler C3;
  auto Unit3 = compileCaptures(C3, "1 + 2");
  ASSERT_NE(Unit3, nullptr);
  EXPECT_EQ(C3.captureReport(*Unit3),
            "captures v1 strategy=rg closures=0\n"
            "total closures=0 regions=0 escaped=0\n");
}

TEST(CapturesTest, PhaseIsOptInAndSkippedByDefault) {
  Compiler C;
  auto Unit = C.compile(CaptureProgram);
  ASSERT_NE(Unit, nullptr);
  EXPECT_FALSE(Unit->Captures.has_value());
  EXPECT_EQ(C.captureReport(*Unit), "");
  bool SawCaptures = false;
  for (const PhaseProfile &P : Unit->Profiles)
    if (P.Name == "captures") {
      SawCaptures = true;
      EXPECT_TRUE(P.Skipped);
      EXPECT_EQ(P.WallNanos, 0u);
    }
  EXPECT_TRUE(SawCaptures);
}

//===----------------------------------------------------------------------===//
// Flat form: embedding, rendering, fail-closed decode
//===----------------------------------------------------------------------===//

TEST(CapturesTest, TreeAndFlatReportsAreByteIdentical) {
  for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
    Compiler C;
    auto Unit = compileCaptures(C, CaptureProgram, S);
    ASSERT_NE(Unit, nullptr);
    std::string Tree = C.captureReport(*Unit);
    ASSERT_FALSE(Tree.empty());

    ASSERT_NE(Unit->Flat, nullptr);
    EXPECT_EQ(Unit->Flat->HasCaptures, 1u);
    EXPECT_EQ(flat::renderCaptureReport(*Unit->Flat), Tree);

    // ... and through a full encode/decode round trip: the report a
    // disk-tier process renders is the same bytes the compiler printed.
    auto Decoded = flat::decodeFlat(flat::encodeFlat(*Unit->Flat));
    ASSERT_NE(Decoded, nullptr);
    EXPECT_EQ(flat::renderCaptureReport(*Decoded), Tree);
  }
}

TEST(CapturesTest, FlatWithoutCapturesRendersEmpty) {
  Compiler C;
  auto Unit = C.compile(CaptureProgram);
  ASSERT_NE(Unit, nullptr);
  ASSERT_NE(Unit->Flat, nullptr);
  EXPECT_EQ(Unit->Flat->HasCaptures, 0u);
  EXPECT_TRUE(Unit->Flat->Caps.empty());
  EXPECT_EQ(flat::renderCaptureReport(*Unit->Flat), "");
}

TEST(CapturesTest, FlatCaptureTableFailsClosed) {
  Compiler C;
  auto Unit = compileCaptures(C, CaptureProgram);
  ASSERT_NE(Unit, nullptr);
  ASSERT_NE(Unit->Flat, nullptr);
  ASSERT_FALSE(Unit->Flat->Caps.empty());

  // An inconsistent flag/table pair never decodes: the flag says "no
  // captures" while the table is non-empty.
  flat::FlatUnit Inconsistent = *Unit->Flat;
  Inconsistent.HasCaptures = 0;
  EXPECT_EQ(flat::decodeFlat(flat::encodeFlat(Inconsistent)), nullptr);

  // A capture span pointing past the Aux pool never decodes either.
  flat::FlatUnit BadSpan = *Unit->Flat;
  BadSpan.Caps[0].ValueBegin =
      static_cast<uint32_t>(BadSpan.Aux.size());
  BadSpan.Caps[0].ValueCount = 4;
  EXPECT_EQ(flat::decodeFlat(flat::encodeFlat(BadSpan)), nullptr);
}

//===----------------------------------------------------------------------===//
// Cache key and memory tier
//===----------------------------------------------------------------------===//

TEST(CapturesTest, CacheKeySeparatesTheCapturesBit) {
  CompileOptions Plain, WithCaps;
  WithCaps.Captures = true;
  EXPECT_NE(hashCompileInputs(CaptureProgram, Plain),
            hashCompileInputs(CaptureProgram, WithCaps));
  EXPECT_FALSE(CacheKey::of(CaptureProgram, Plain) ==
               CacheKey::of(CaptureProgram, WithCaps));

  // The memory tier never serves a plain entry to a captures request.
  CompileCache Cache(/*Capacity=*/8);
  Cache.insert(CacheKey::of(CaptureProgram, Plain),
               compileShared(CaptureProgram, Plain));
  EXPECT_EQ(Cache.lookup(CacheKey::of(CaptureProgram, WithCaps)), nullptr);
  EXPECT_NE(Cache.lookup(CacheKey::of(CaptureProgram, Plain)), nullptr);
}

TEST(CapturesTest, CompileSharedRendersTheReportOnce) {
  CompileOptions WithCaps;
  WithCaps.Captures = true;
  CachedCompileRef CC = compileShared(CaptureProgram, WithCaps);
  ASSERT_TRUE(CC->ok());
  EXPECT_EQ(CC->CaptureReport.rfind("captures v1 ", 0), 0u);

  CompileOptions Plain;
  EXPECT_EQ(compileShared(CaptureProgram, Plain)->CaptureReport, "");
}

//===----------------------------------------------------------------------===//
// Disk tier
//===----------------------------------------------------------------------===//

TEST(CapturesTest, DiskTierPersistsTheReportByteIdentically) {
  ScratchDir Dir("disk");
  DiskCache Disk(Dir.str());
  CompileOptions Opts;
  Opts.Captures = true;
  CacheKey K = CacheKey::of(CaptureProgram, Opts);
  CachedCompileRef Fresh = compileShared(CaptureProgram, Opts);
  ASSERT_TRUE(Fresh->ok());
  ASSERT_FALSE(Fresh->CaptureReport.empty());
  Disk.store(K, *Fresh);

  CachedCompileRef Loaded = Disk.load(K);
  ASSERT_NE(Loaded, nullptr);
  EXPECT_EQ(Loaded->CaptureReport, Fresh->CaptureReport);

  // A key differing only in the Captures bit rejects the file (option
  // mismatch), it does not misserve it.
  CompileOptions Plain;
  CacheKey PlainK = CacheKey::of(CaptureProgram, Plain);
  ASSERT_NE(PlainK.Hash, K.Hash);
  EXPECT_EQ(Disk.load(PlainK), nullptr);
}

TEST(CapturesTest, PreCaptureFormatVersionsAreRejected) {
  ScratchDir Dir("version");
  DiskCache Disk(Dir.str());
  CompileOptions Opts;
  Opts.Captures = true;
  CacheKey K = CacheKey::of(CaptureProgram, Opts);
  Disk.store(K, *compileShared(CaptureProgram, Opts));

  // Forge a v2 file: same bytes, version field (after the 8-byte magic)
  // patched down. A pre-captures reader's byte layout differs from v3's
  // — the load must version-reject, not misparse.
  fs::path Entry = Dir.Path / DiskCache::entryFileName(K.Hash);
  std::ifstream In(Entry, std::ios::binary);
  std::string Bytes{std::istreambuf_iterator<char>(In),
                    std::istreambuf_iterator<char>()};
  In.close();
  ASSERT_GT(Bytes.size(), 12u);
  Bytes[8] = 2; // little-endian u32 version = 2
  std::ofstream Out(Entry, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  Out.close();

  uint64_t RejectsBefore = Disk.counters().LoadRejects;
  EXPECT_EQ(Disk.load(K), nullptr);
  EXPECT_EQ(Disk.counters().LoadRejects, RejectsBefore + 1);
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(CapturesTest, CaptureQueryKindRoundTripsOnTheWire) {
  net::WireRequest Req;
  Req.Id = 77;
  Req.Kind = net::MsgKind::CaptureQuery;
  Req.Source = CaptureProgram;
  std::string Frame;
  net::encodeRequest(Req, Frame);

  net::WireRequest Out;
  std::string Err;
  size_t Consumed = 0;
  ASSERT_EQ(net::decodeRequest(Frame, Consumed, Out, Err), net::Decode::Frame)
      << Err;
  EXPECT_EQ(Consumed, Frame.size());
  EXPECT_EQ(Out.Kind, net::MsgKind::CaptureQuery);
  EXPECT_EQ(Out.Id, 77u);
  EXPECT_EQ(Out.Source, CaptureProgram);
}

TEST(CapturesTest, UnknownKindPastCaptureQueryFailsClosed) {
  net::WireRequest Req;
  Req.Kind = net::MsgKind::CaptureQuery;
  Req.Source = "1 + 1";
  std::string Frame;
  net::encodeRequest(Req, Frame);
  // The kind byte sits after the 4-byte length prefix and the u64 id.
  ASSERT_EQ(Frame[4 + 8],
            static_cast<char>(net::MsgKind::CaptureQuery));
  Frame[4 + 8] = 4; // one past the newest kind: a future dialect
  net::WireRequest Out;
  std::string Err;
  size_t Consumed = 0;
  EXPECT_EQ(net::decodeRequest(Frame, Consumed, Out, Err), net::Decode::Bad);
  EXPECT_EQ(Consumed, 0u);
  EXPECT_NE(Err.find("unknown request kind"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Service differential: cache tiers, pool on/off, warm restart
//===----------------------------------------------------------------------===//

Request captureRequest() {
  Request Req;
  Req.Source = CaptureProgram;
  Req.Opts.Captures = true;
  Req.Run = false;
  return Req;
}

TEST(CapturesTest, ReportIsByteIdenticalAcrossCacheTiersAndPoolModes) {
  ScratchDir Dir("tiers");

  std::string ColdReport;
  {
    ServiceConfig Cfg;
    Cfg.Workers = 1;
    Cfg.CacheDir = Dir.str();
    Service Svc(Cfg);

    Response Cold = Svc.submit(captureRequest()).get();
    ASSERT_EQ(Cold.Status, RequestOutcome::Ok);
    ASSERT_FALSE(Cold.CacheHit);
    ASSERT_FALSE(Cold.CaptureReport.empty());
    ColdReport = Cold.CaptureReport;

    // Memory-tier hit: same bytes, every static phase Skipped.
    Response Hit = Svc.submit(captureRequest()).get();
    ASSERT_TRUE(Hit.CacheHit);
    EXPECT_EQ(Hit.CaptureReport, ColdReport);
    for (const PhaseProfile &P : Hit.Profiles)
      EXPECT_TRUE(P.Skipped) << P.Name;
  }

  // Warm restart: a second service on the same --cache-dir answers the
  // capture query from disk — byte-identical report, zero compile
  // phases executed.
  {
    ServiceConfig Cfg;
    Cfg.Workers = 1;
    Cfg.CacheDir = Dir.str();
    Service Svc(Cfg);
    Response Warm = Svc.submit(captureRequest()).get();
    ASSERT_EQ(Warm.Status, RequestOutcome::Ok);
    EXPECT_TRUE(Warm.CacheHit);
    EXPECT_EQ(Warm.CaptureReport, ColdReport);
    for (const PhaseProfile &P : Warm.Profiles) {
      EXPECT_TRUE(P.Skipped) << P.Name << " ran on a warm restart";
      EXPECT_EQ(P.WallNanos, 0u) << P.Name;
    }
    ServiceStats S = Svc.stats();
    EXPECT_EQ(S.DiskHits, 1u);
    for (const ServiceStats::PhaseAggregate &A : S.Phases)
      EXPECT_EQ(A.Count, 0u) << A.Name << " executed on a warm restart";
  }

  // The report is a static product: pooling on or off cannot change a
  // byte of it.
  {
    ServiceConfig Cfg;
    Cfg.Workers = 1;
    Cfg.PagePoolPages = 0;
    Service Svc(Cfg);
    Response R = Svc.submit(captureRequest()).get();
    ASSERT_EQ(R.Status, RequestOutcome::Ok);
    EXPECT_EQ(R.CaptureReport, ColdReport);
  }
}

} // namespace
