//===- tests/rexpr_test.cpp - Region-term utilities tests -----------------===//
//
// freeVars (fpv of Section 3.6), value classification, and the two
// substitutions the dynamic semantics is built from: program-variable
// substitution e[v/x] and annotation substitution e[S] (capture-free at
// binders).
//
//===----------------------------------------------------------------------===//

#include "region/RExpr.h"

#include "smallstep/Step.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class RExprTest : public ::testing::Test {
protected:
  Symbol sym(const char *S) { return Names.intern(S); }

  RExpr *var(const char *S) {
    RExpr *E = Arena.make(RExpr::Kind::Var);
    E->Name = sym(S);
    return E;
  }
  RExpr *intLit(int64_t V) {
    RExpr *E = Arena.make(RExpr::Kind::IntLit);
    E->IntValue = V;
    return E;
  }
  RExpr *lam(const char *P, const RExpr *Body) {
    RExpr *E = Arena.make(RExpr::Kind::Lam);
    E->Param = sym(P);
    E->A = Body;
    E->AtRho = RegionVar(1);
    return E;
  }
  RExpr *let(const char *N, const RExpr *Rhs, const RExpr *Body) {
    RExpr *E = Arena.make(RExpr::Kind::Let);
    E->Name = sym(N);
    E->A = Rhs;
    E->B = Body;
    return E;
  }
  RExpr *app(const RExpr *F, const RExpr *X) {
    RExpr *E = Arena.make(RExpr::Kind::App);
    E->A = F;
    E->B = X;
    return E;
  }

  bool hasFree(const RExpr *E, const char *S) {
    std::vector<Symbol> Free = freeVars(E);
    return std::find(Free.begin(), Free.end(), sym(S)) != Free.end();
  }

  RExprArena Arena;
  Interner Names;
};

TEST_F(RExprTest, FreeVarsRespectBinders) {
  // fn x => x y : only y is free.
  const RExpr *E = lam("x", app(var("x"), var("y")));
  EXPECT_FALSE(hasFree(E, "x"));
  EXPECT_TRUE(hasFree(E, "y"));
}

TEST_F(RExprTest, LetBindsOnlyTheBody) {
  // let x = x in x : the right-hand x is free, the body x is bound.
  const RExpr *E = let("x", var("x"), var("x"));
  EXPECT_TRUE(hasFree(E, "x"));
  const RExpr *E2 = let("x", intLit(1), var("x"));
  EXPECT_FALSE(hasFree(E2, "x"));
}

TEST_F(RExprTest, CaseBindersScopeOverConsBranch) {
  RExpr *E = Arena.make(RExpr::Kind::ListCase);
  E->A = var("xs");
  E->B = var("h"); // free here!
  E->HeadName = sym("h");
  E->TailName = sym("t");
  E->C = app(var("h"), var("t"));
  EXPECT_TRUE(hasFree(E, "xs"));
  EXPECT_TRUE(hasFree(E, "h")); // via the nil branch
  EXPECT_FALSE(hasFree(E, "t"));
}

TEST_F(RExprTest, ValueClassification) {
  EXPECT_TRUE(intLit(1)->isValue());
  EXPECT_TRUE(Arena.make(RExpr::Kind::NilVal)->isValue());
  EXPECT_TRUE(Arena.make(RExpr::Kind::StrVal)->isValue());
  EXPECT_FALSE(var("x")->isValue());
  EXPECT_FALSE(lam("x", var("x"))->isValue()); // unallocated lambda
  EXPECT_TRUE(Arena.make(RExpr::Kind::ClosVal)->isValue());
}

TEST_F(RExprTest, SubstVarStopsAtShadowingBinders) {
  SmallStep M(Arena, Names);
  // (fn x => x) [v/x] is unchanged; (fn y => x) [v/x] substitutes.
  const RExpr *V = intLit(42);
  const RExpr *Shadow = lam("x", var("x"));
  EXPECT_EQ(M.substVar(Shadow, sym("x"), V), Shadow);
  const RExpr *Open = lam("y", var("x"));
  const RExpr *Out = M.substVar(Open, sym("x"), V);
  EXPECT_NE(Out, Open);
  EXPECT_EQ(Out->A->K, RExpr::Kind::IntLit);
  EXPECT_EQ(Out->A->IntValue, 42);
}

TEST_F(RExprTest, SubstVarSharesUntouchedSubtrees) {
  SmallStep M(Arena, Names);
  const RExpr *Body = app(var("f"), intLit(1));
  const RExpr *Out = M.substVar(Body, sym("zzz"), intLit(9));
  EXPECT_EQ(Out, Body); // no occurrence: node identity preserved
}

TEST_F(RExprTest, SubstTermRewritesAnnotations) {
  SmallStep M(Arena, Names);
  RTypeArena TA;
  RExpr *S = Arena.make(RExpr::Kind::StrE);
  S->StrValue = "x";
  S->AtRho = RegionVar(5);
  Subst Sub;
  Sub.Sr.emplace(RegionVar(5), RegionVar(9));
  const RExpr *Out = M.substTerm(S, Sub, TA);
  EXPECT_EQ(Out->AtRho, RegionVar(9));
  EXPECT_EQ(S->AtRho, RegionVar(5)); // original untouched
}

TEST_F(RExprTest, SubstTermRespectsFunValueBinders) {
  SmallStep M(Arena, Names);
  RTypeArena TA;
  // <fun f [r5] x = "s" at r5>^r1 : r5 is bound; [r9/r5] must not
  // rewrite inside (the renamed-apart convention of Section 3.3).
  RExpr *Body = Arena.make(RExpr::Kind::StrE);
  Body->StrValue = "s";
  Body->AtRho = RegionVar(5);
  RExpr *Fun = Arena.make(RExpr::Kind::FunVal);
  Fun->Name = sym("f");
  Fun->Param = sym("x");
  Fun->A = Body;
  Fun->AtRho = RegionVar(1);
  Fun->Sigma.QRegions = {RegionVar(5)};
  Fun->Sigma.Body = TA.arrowTy(TA.unitTy(), ArrowEff(EffectVar(1), {}),
                               TA.boxed(TA.stringTy(), RegionVar(5)));
  Subst Sub;
  Sub.Sr.emplace(RegionVar(5), RegionVar(9));
  const RExpr *Out = M.substTerm(Fun, Sub, TA);
  EXPECT_EQ(Out, Fun) << "bound r5 must shield the whole fun value";

  // An unbound region in the same value *is* rewritten.
  Subst Sub2;
  Sub2.Sr.emplace(RegionVar(1), RegionVar(7));
  const RExpr *Out2 = M.substTerm(Fun, Sub2, TA);
  EXPECT_NE(Out2, Fun);
  EXPECT_EQ(Out2->AtRho, RegionVar(7));
  EXPECT_EQ(Out2->A->AtRho, RegionVar(5)); // body untouched
}

TEST_F(RExprTest, SubstTermRespectsLetregionBinders) {
  SmallStep M(Arena, Names);
  RTypeArena TA;
  RExpr *Body = Arena.make(RExpr::Kind::StrE);
  Body->StrValue = "s";
  Body->AtRho = RegionVar(5);
  RExpr *LR = Arena.make(RExpr::Kind::LetRegion);
  LR->BoundRho = RegionVar(5);
  LR->A = Body;
  Subst Sub;
  Sub.Sr.emplace(RegionVar(5), RegionVar(9));
  const RExpr *Out = M.substTerm(LR, Sub, TA);
  // The binder shields its body: the at-annotation keeps r5.
  EXPECT_EQ(Out->A->AtRho, RegionVar(5));
}

TEST_F(RExprTest, CloneIsShallow) {
  const RExpr *Body = var("x");
  RExpr *L = lam("x", Body);
  RExpr *C = Arena.clone(L);
  EXPECT_NE(C, L);
  EXPECT_EQ(C->A, Body);
  EXPECT_EQ(C->Param, L->Param);
}

} // namespace
