//===- tests/gc_test.cpp - Copying collector unit tests -------------------===//
//
// The Cheney-style collector: liveness, sharing, region identity,
// tag-free layouts, root updates and — the paper's crash — dangling
// pointer detection.
//
//===----------------------------------------------------------------------===//

#include "rt/Gc.h"

#include <gtest/gtest.h>

using namespace rml;
using namespace rml::rt;

namespace {

class GcTest : public ::testing::Test {
protected:
  /// Allocates a tagged pair in \p R.
  Value pair(uint32_t R, Value A, Value B) {
    uint64_t *P = H.alloc(R, 3);
    P[0] = makeHeader(ObjKind::Pair, 0);
    P[1] = A;
    P[2] = B;
    return fromPtr(P);
  }

  /// Allocates a tag-free cons cell in \p R (must be a Cons region).
  Value cons(uint32_t R, Value Head, Value Tail) {
    uint64_t *P = H.alloc(R, 2);
    P[0] = Head;
    P[1] = Tail;
    return fromPtr(P);
  }

  Value str(uint32_t R, std::string_view S) {
    size_t Words = 1 + (S.size() + 7) / 8;
    uint64_t *P = H.alloc(R, Words);
    P[0] = makeHeader(ObjKind::String, S.size());
    if (!S.empty()) {
      P[Words - 1] = 0;
      memcpy(P + 1, S.data(), S.size());
    }
    return fromPtr(P);
  }

  static int64_t fst(Value V, bool TagFree = false) {
    return unboxScalar(asPtr(V)[TagFree ? 0 : 1]);
  }

  RegionHeap H;
};

TEST_F(GcTest, LiveObjectsSurviveGarbageDies) {
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  Value Live = pair(R, boxScalar(1), boxScalar(2));
  for (int I = 0; I < 1000; ++I)
    pair(R, boxScalar(I), boxScalar(I)); // garbage
  uint64_t WordsBefore = H.Stats.CurrentHeapWords;
  std::vector<Value *> Roots{&Live};
  GcResult G = collectGarbage(H, Roots);
  ASSERT_TRUE(G.Ok) << G.Error;
  EXPECT_EQ(G.CopiedWords, 3u);
  EXPECT_LT(H.Stats.CurrentHeapWords, WordsBefore);
  EXPECT_EQ(fst(Live), 1);
}

TEST_F(GcTest, RootsAreUpdatedToTheNewLocation) {
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  Value V = pair(R, boxScalar(7), boxScalar(8));
  Value Before = V;
  std::vector<Value *> Roots{&V};
  ASSERT_TRUE(collectGarbage(H, Roots).Ok);
  EXPECT_NE(V, Before); // moved
  EXPECT_EQ(fst(V), 7);
}

TEST_F(GcTest, SharingIsPreserved) {
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  Value Shared = pair(R, boxScalar(1), boxScalar(2));
  Value A = pair(R, Shared, boxScalar(0));
  Value B = pair(R, Shared, boxScalar(0));
  std::vector<Value *> Roots{&A, &B};
  GcResult G = collectGarbage(H, Roots);
  ASSERT_TRUE(G.Ok);
  // Both outer pairs reference the *same* copied object.
  EXPECT_EQ(asPtr(A)[1], asPtr(B)[1]);
  // 3 objects * 3 words each.
  EXPECT_EQ(G.CopiedWords, 9u);
}

TEST_F(GcTest, CyclesThroughSharingTerminate) {
  // Refs can create cycles: r := pair containing r.
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  uint64_t *Ref = H.alloc(R, 2);
  Ref[0] = makeHeader(ObjKind::Ref, 0);
  Ref[1] = NilValue;
  Value RefV = fromPtr(Ref);
  Value P = pair(R, RefV, boxScalar(1));
  asPtr(RefV)[1] = P; // cycle
  std::vector<Value *> Roots{&RefV};
  GcResult G = collectGarbage(H, Roots);
  ASSERT_TRUE(G.Ok) << G.Error;
  // ref(2 words) + pair(3 words).
  EXPECT_EQ(G.CopiedWords, 5u);
  // The cycle is intact after copying.
  uint64_t *NewRef = asPtr(RefV);
  Value NewPair = NewRef[1];
  EXPECT_EQ(asPtr(NewPair)[1], RefV);
}

TEST_F(GcTest, RegionIdentityIsPreserved) {
  uint32_t R1 = H.create(1, RegionKind::Mixed, 0);
  uint32_t R2 = H.create(2, RegionKind::Mixed, 0);
  Value V1 = pair(R1, boxScalar(1), boxScalar(1));
  Value V2 = pair(R2, boxScalar(2), boxScalar(2));
  std::vector<Value *> Roots{&V1, &V2};
  ASSERT_TRUE(collectGarbage(H, Roots).Ok);
  EXPECT_EQ(H.ownerOf(asPtr(V1)), std::optional<uint32_t>(R1));
  EXPECT_EQ(H.ownerOf(asPtr(V2)), std::optional<uint32_t>(R2));
}

TEST_F(GcTest, TagFreeConsRegionsScanByKind) {
  uint32_t R = H.create(1, RegionKind::Cons, 0);
  Value L = NilValue;
  for (int I = 5; I > 0; --I)
    L = cons(R, boxScalar(I), L);
  for (int I = 0; I < 100; ++I)
    cons(R, boxScalar(I), NilValue); // garbage
  std::vector<Value *> Roots{&L};
  GcResult G = collectGarbage(H, Roots);
  ASSERT_TRUE(G.Ok) << G.Error;
  EXPECT_EQ(G.CopiedWords, 10u); // 5 cells * 2 words, headerless
  int N = 0;
  for (Value Cur = L; Cur != NilValue; Cur = asPtr(Cur)[1])
    ++N;
  EXPECT_EQ(N, 5);
}

TEST_F(GcTest, StringsSurviveWithoutScanning) {
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  Value S = str(R, "hello world");
  std::vector<Value *> Roots{&S};
  ASSERT_TRUE(collectGarbage(H, Roots).Ok);
  uint64_t *P = asPtr(S);
  EXPECT_EQ(headerKind(P[0]), ObjKind::String);
  EXPECT_EQ(std::string_view(reinterpret_cast<const char *>(P + 1), 11),
            "hello world");
}

TEST_F(GcTest, ScalarsPassThroughUntouched) {
  Value V = boxScalar(-12345);
  Value U = unitValue();
  Value N = NilValue;
  std::vector<Value *> Roots{&V, &U, &N};
  ASSERT_TRUE(collectGarbage(H, Roots).Ok);
  EXPECT_EQ(unboxScalar(V), -12345);
  EXPECT_EQ(U, unitValue());
  EXPECT_EQ(N, NilValue);
}

TEST_F(GcTest, DanglingPointerIsDetected) {
  // The paper's failure: a live object referencing a deallocated region.
  // Graveyard mode makes detection exact (page reuse could otherwise let
  // a dangling pointer alias a fresh page).
  H.RetainReleasedPages = true;
  uint32_t Dead = H.create(86, RegionKind::Mixed, 0);
  Value Doomed = pair(Dead, boxScalar(1), boxScalar(2));
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  Value Holder = pair(R, Doomed, boxScalar(0));
  H.release(Dead);
  std::vector<Value *> Roots{&Holder};
  GcResult G = collectGarbage(H, Roots);
  EXPECT_FALSE(G.Ok);
  EXPECT_NE(G.Error.find("dangling"), std::string::npos);
}

TEST_F(GcTest, DanglingDiagnosticsNameTheRegionInGraveyardMode) {
  H.RetainReleasedPages = true;
  uint32_t Dead = H.create(99, RegionKind::Mixed, 0);
  Value Doomed = pair(Dead, boxScalar(1), boxScalar(2));
  H.release(Dead);
  std::vector<Value *> Roots{&Doomed};
  GcResult G = collectGarbage(H, Roots);
  ASSERT_FALSE(G.Ok);
  EXPECT_NE(G.Error.find("r99"), std::string::npos) << G.Error;
}

TEST_F(GcTest, RepeatedCollectionsAreStable) {
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  Value L = pair(R, boxScalar(1), pair(R, boxScalar(2), boxScalar(3)));
  for (int I = 0; I < 5; ++I) {
    std::vector<Value *> Roots{&L};
    ASSERT_TRUE(collectGarbage(H, Roots).Ok);
  }
  EXPECT_EQ(fst(L), 1);
  EXPECT_EQ(H.Stats.GcCount, 5u);
}

TEST_F(GcTest, ClosureLayoutSkipsRegionWords) {
  // Closure: [hdr][fnIdx][nRegions][regionWord][capture...]: the region
  // word must not be traced as a pointer.
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  Value Cap = pair(R, boxScalar(9), boxScalar(9));
  uint64_t *C = H.alloc(R, 5);
  C[0] = makeHeader(ObjKind::Closure, 4);
  C[1] = 3;                         // fnIdx
  C[2] = 1;                         // nRegions
  C[3] = (uint64_t(7) << 32) | 1;   // packed region word (not a pointer)
  C[4] = Cap;                       // captured value
  Value Clos = fromPtr(C);
  std::vector<Value *> Roots{&Clos};
  GcResult G = collectGarbage(H, Roots);
  ASSERT_TRUE(G.Ok) << G.Error;
  uint64_t *NC = asPtr(Clos);
  EXPECT_EQ(NC[1], 3u);
  EXPECT_EQ(NC[3], (uint64_t(7) << 32) | 1);
  EXPECT_EQ(unboxScalar(asPtr(NC[4])[1]), 9);
}

} // namespace
