//===- tests/disk_cache_test.cpp - Persistent compile-cache tier ----------===//
//
// The on-disk tier beneath the in-memory compile cache: round-trip
// fidelity of the persisted static products, fail-closed behaviour under
// every corruption we can manufacture (truncation, bad magic/version,
// trailing garbage, forged hash collisions, unwritable directories), and
// the service-level warm-restart story — a second process pointed at the
// same --cache-dir serves byte-identical answers from disk. Labelled
// `disk` in ctest and expected to be clean under -DRML_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "service/DiskCache.h"

#include "flat/Flat.h"
#include "service/Service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace rml;
using namespace rml::service;

namespace fs = std::filesystem;

namespace {

/// The polymorphic program the service tests use: two top-level
/// schemes, letregion placement, enough work to be a realistic entry.
const char *ComposeProgram = R"(
fun compose fg = fn x => #1 fg (#2 fg x)
fun iter n acc =
  if n = 0 then acc
  else let val h = compose (fn x => x + 1, fn x => x * 2)
       in iter (n - 1) acc + h n - h n end
;iter 600 21
)";

/// A fresh directory under the test binary's scratch space, removed on
/// destruction. GTest's TempDir() is per-run, so a per-test suffix
/// keeps concurrent test shards apart.
struct ScratchDir {
  fs::path Path;
  explicit ScratchDir(const std::string &Name) {
    Path = fs::path(::testing::TempDir()) / ("rml_disk_" + Name);
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

std::string readFileBytes(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const fs::path &P, const std::string &Bytes) {
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

size_t entryCount(const fs::path &Dir) {
  size_t N = 0;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".rmlc")
      ++N;
  return N;
}

TEST(DiskCacheTest, EntryFileNameIsSixteenHexDigits) {
  EXPECT_EQ(DiskCache::entryFileName(0x1234), "0000000000001234.rmlc");
  EXPECT_EQ(DiskCache::entryFileName(0xDEADBEEFCAFEF00Dull),
            "deadbeefcafef00d.rmlc");
}

TEST(DiskCacheTest, RoundTripIsByteIdentical) {
  ScratchDir Dir("roundtrip");
  DiskCache Disk(Dir.str());

  CompileOptions Opts;
  CacheKey K = CacheKey::of(ComposeProgram, Opts);
  CachedCompileRef Fresh = compileShared(ComposeProgram, Opts);
  ASSERT_TRUE(Fresh->ok());
  ASSERT_FALSE(Fresh->Schemes.empty());
  Disk.store(K, *Fresh);
  ASSERT_TRUE(fs::exists(Dir.Path / DiskCache::entryFileName(K.Hash)));

  CachedCompileRef Loaded = Disk.load(K);
  ASSERT_NE(Loaded, nullptr);
  EXPECT_TRUE(Loaded->FromDisk);
  EXPECT_TRUE(Loaded->ok());
  EXPECT_TRUE(Loaded->runnable()) << "the embedded flat unit runs directly";
  EXPECT_EQ(Loaded->Unit, nullptr) << "no CompiledUnit is persisted";
  ASSERT_NE(Loaded->Flat, nullptr);
  // The decoded flat unit re-encodes to exactly the bytes the fresh
  // compile's flat unit encodes to — the persisted runnable form is
  // byte-stable through a full store/load cycle.
  ASSERT_NE(Fresh->Flat, nullptr);
  EXPECT_EQ(flat::encodeFlat(*Loaded->Flat), flat::encodeFlat(*Fresh->Flat));
  // The static products are the same bytes, not merely equivalent.
  EXPECT_EQ(Loaded->Printed, Fresh->Printed);
  EXPECT_EQ(Loaded->Diagnostics, Fresh->Diagnostics);
  EXPECT_EQ(Loaded->Schemes, Fresh->Schemes);
  EXPECT_EQ(Loaded->schemeOf("compose"), Fresh->schemeOf("compose"));
  EXPECT_EQ(Loaded->Cost, Fresh->Cost);
  // Phase names survive (as skipped profiles — the work was not redone).
  ASSERT_EQ(Loaded->Profiles.size(), Fresh->Profiles.size());
  for (size_t I = 0; I < Loaded->Profiles.size(); ++I) {
    EXPECT_EQ(Loaded->Profiles[I].Name, Fresh->Profiles[I].Name);
    EXPECT_TRUE(Loaded->Profiles[I].Skipped);
  }

  DiskCache::Counters C = Disk.counters();
  EXPECT_EQ(C.Hits, 1u);
  EXPECT_EQ(C.Misses, 0u);
  EXPECT_EQ(C.LoadRejects, 0u);
  EXPECT_EQ(C.WriteErrors, 0u);
}

TEST(DiskCacheTest, FailedCompilePersistsItsDiagnostics) {
  ScratchDir Dir("failed");
  DiskCache Disk(Dir.str());

  CompileOptions Opts;
  const std::string Bad = "nosuchvar + 1";
  CacheKey K = CacheKey::of(Bad, Opts);
  CachedCompileRef Fresh = compileShared(Bad, Opts);
  ASSERT_FALSE(Fresh->ok());
  ASSERT_FALSE(Fresh->Diagnostics.empty());
  Disk.store(K, *Fresh);

  CachedCompileRef Loaded = Disk.load(K);
  ASSERT_NE(Loaded, nullptr);
  EXPECT_FALSE(Loaded->ok()) << "the persisted verdict is the failure";
  EXPECT_FALSE(Loaded->runnable());
  EXPECT_EQ(Loaded->Diagnostics, Fresh->Diagnostics);
}

TEST(DiskCacheTest, MissingEntryIsAMissNotAReject) {
  ScratchDir Dir("missing");
  DiskCache Disk(Dir.str());
  CacheKey K = CacheKey::of("1 + 1", {});
  EXPECT_EQ(Disk.load(K), nullptr);
  DiskCache::Counters C = Disk.counters();
  EXPECT_EQ(C.Misses, 1u);
  EXPECT_EQ(C.LoadRejects, 0u);
}

TEST(DiskCacheTest, StoreSkipsExistingAndDiskBornEntries) {
  ScratchDir Dir("idempotent");
  DiskCache Disk(Dir.str());

  CompileOptions Opts;
  CacheKey K = CacheKey::of("1 + 1", Opts);
  CachedCompileRef Fresh = compileShared("1 + 1", Opts);
  Disk.store(K, *Fresh);
  ASSERT_EQ(entryCount(Dir.Path), 1u);
  fs::path File = Dir.Path / DiskCache::entryFileName(K.Hash);
  auto FirstWrite = fs::last_write_time(File);

  // A second store is a no-op: determinism means the bytes would be
  // identical, so the existing file stands.
  Disk.store(K, *Fresh);
  EXPECT_EQ(entryCount(Dir.Path), 1u);
  EXPECT_EQ(fs::last_write_time(File), FirstWrite);

  // An entry that itself came from disk is never written back.
  CachedCompileRef Loaded = Disk.load(K);
  ASSERT_NE(Loaded, nullptr);
  fs::remove(File);
  Disk.store(K, *Loaded);
  EXPECT_EQ(entryCount(Dir.Path), 0u);
  EXPECT_EQ(Disk.counters().WriteErrors, 0u);
}

/// Stores ComposeProgram and returns (key, path-to-entry-file) so each
/// corruption test can damage it a different way.
fs::path storeComposeEntry(DiskCache &Disk, const fs::path &Dir,
                           CacheKey &KOut) {
  CompileOptions Opts;
  KOut = CacheKey::of(ComposeProgram, Opts);
  CachedCompileRef Fresh = compileShared(ComposeProgram, Opts);
  Disk.store(KOut, *Fresh);
  fs::path File = Dir / DiskCache::entryFileName(KOut.Hash);
  EXPECT_TRUE(fs::exists(File));
  return File;
}

TEST(DiskCacheTest, TruncatedEntryRejectsToAMiss) {
  ScratchDir Dir("truncated");
  DiskCache Disk(Dir.str());
  CacheKey K;
  fs::path File = storeComposeEntry(Disk, Dir.Path, K);

  fs::resize_file(File, fs::file_size(File) / 2);
  EXPECT_EQ(Disk.load(K), nullptr);
  EXPECT_EQ(Disk.counters().LoadRejects, 1u);

  // All the way down to an empty file.
  fs::resize_file(File, 0);
  EXPECT_EQ(Disk.load(K), nullptr);
  EXPECT_EQ(Disk.counters().LoadRejects, 2u);
}

TEST(DiskCacheTest, BadMagicRejectsToAMiss) {
  ScratchDir Dir("badmagic");
  DiskCache Disk(Dir.str());
  CacheKey K;
  fs::path File = storeComposeEntry(Disk, Dir.Path, K);

  std::string Bytes = readFileBytes(File);
  ASSERT_GT(Bytes.size(), 8u);
  Bytes[0] ^= 0x20; // 'R' -> 'r'
  writeFileBytes(File, Bytes);
  EXPECT_EQ(Disk.load(K), nullptr);
  EXPECT_EQ(Disk.counters().LoadRejects, 1u);
}

TEST(DiskCacheTest, ForeignVersionRejectsToAMiss) {
  ScratchDir Dir("badversion");
  DiskCache Disk(Dir.str());
  CacheKey K;
  fs::path File = storeComposeEntry(Disk, Dir.Path, K);

  // The format version is the little-endian u32 right after the magic;
  // pretend a future process wrote version+1.
  std::string Bytes = readFileBytes(File);
  ASSERT_GT(Bytes.size(), 12u);
  Bytes[8] = static_cast<char>(DiskCache::FormatVersion + 1);
  writeFileBytes(File, Bytes);
  EXPECT_EQ(Disk.load(K), nullptr);
  EXPECT_EQ(Disk.counters().LoadRejects, 1u);
}

TEST(DiskCacheTest, TrailingGarbageRejectsToAMiss) {
  ScratchDir Dir("trailing");
  DiskCache Disk(Dir.str());
  CacheKey K;
  fs::path File = storeComposeEntry(Disk, Dir.Path, K);

  std::string Bytes = readFileBytes(File);
  writeFileBytes(File, Bytes + "extra");
  EXPECT_EQ(Disk.load(K), nullptr) << "a parse must consume every byte";
  EXPECT_EQ(Disk.counters().LoadRejects, 1u);
}

TEST(DiskCacheTest, HashCollisionFailsClosed) {
  ScratchDir Dir("collision");
  DiskCache Disk(Dir.str());
  CacheKey K;
  storeComposeEntry(Disk, Dir.Path, K);

  // Forge the collision FNV-1a cannot rule out: a different source
  // whose key claims the same 64-bit hash. The load finds the entry
  // file, sees the embedded source differ, and rejects — the service
  // recompiles rather than serving another program's products.
  CacheKey Forged = CacheKey::of("1 + 1", {});
  Forged.Hash = K.Hash;
  EXPECT_EQ(Disk.load(Forged), nullptr);
  EXPECT_EQ(Disk.counters().LoadRejects, 1u);

  // Options are part of the identity too: same source, same hash,
  // different checker toggle must also fail closed.
  CacheKey OptForged = K;
  OptForged.Check = !OptForged.Check;
  EXPECT_EQ(Disk.load(OptForged), nullptr);
  EXPECT_EQ(Disk.counters().LoadRejects, 2u);
}

TEST(DiskCacheTest, UnwritableDirectoryCountsWriteErrors) {
  ScratchDir Dir("unwritable");
  // A path nested under a regular *file* can never be created, even
  // running as root — mkdir fails with ENOTDIR.
  fs::path Blocker = Dir.Path / "blocker";
  writeFileBytes(Blocker, "not a directory");
  DiskCache Disk((Blocker / "sub").string());

  CompileOptions Opts;
  CacheKey K = CacheKey::of("1 + 1", Opts);
  CachedCompileRef Fresh = compileShared("1 + 1", Opts);
  Disk.store(K, *Fresh); // must not throw
  EXPECT_EQ(Disk.counters().WriteErrors, 1u);
  EXPECT_EQ(Disk.load(K), nullptr); // and loads just miss
  EXPECT_EQ(Disk.counters().Misses, 1u);
}

//===----------------------------------------------------------------------===//
// The two-tier story end to end: Service + CompileCache + DiskCache.
//===----------------------------------------------------------------------===//

ServiceConfig diskServiceConfig(const std::string &Dir, unsigned Workers) {
  ServiceConfig Cfg;
  Cfg.Workers = Workers;
  Cfg.QueueCapacity = 32;
  Cfg.CacheCapacity = 32;
  Cfg.CacheDir = Dir;
  return Cfg;
}

TEST(DiskServiceTest, WarmRestartServesByteIdenticalAnswersFromDisk) {
  ScratchDir Dir("warm_restart");

  Request Req;
  Req.Source = ComposeProgram;
  Req.Run = false; // static products only — the disk tier's home turf
  Req.SchemeNames = {"compose", "iter"};

  // First service: cold, compiles, writes through.
  Response Cold;
  {
    Service Svc(diskServiceConfig(Dir.str(), 1));
    Cold = Svc.submit(Req).get();
    ASSERT_EQ(Cold.Status, RequestOutcome::Ok) << Cold.Diagnostics;
    ASSERT_TRUE(Cold.CompileOk);
    ASSERT_FALSE(Cold.CacheHit);
    ServiceStats S = Svc.stats();
    EXPECT_EQ(S.DiskMisses, 1u);
    EXPECT_EQ(S.DiskHits, 0u);
    EXPECT_EQ(S.DiskWriteErrors, 0u);
  }
  ASSERT_EQ(entryCount(Dir.Path), 1u) << "the entry must outlive the process";

  // Second service, same directory: the memory tier is empty, the disk
  // tier answers, and the bytes are identical to the cold compile.
  {
    Service Svc(diskServiceConfig(Dir.str(), 1));
    Response Warm = Svc.submit(Req).get();
    ASSERT_EQ(Warm.Status, RequestOutcome::Ok) << Warm.Diagnostics;
    EXPECT_TRUE(Warm.CacheHit) << "a verified disk hit is a cache hit";
    EXPECT_EQ(Warm.Printed, Cold.Printed);
    EXPECT_EQ(Warm.Diagnostics, Cold.Diagnostics);
    EXPECT_EQ(Warm.Schemes, Cold.Schemes);
    ServiceStats S = Svc.stats();
    EXPECT_EQ(S.DiskHits, 1u);
    EXPECT_EQ(S.DiskLoadRejects, 0u);
    std::string J = S.json();
    EXPECT_NE(J.find("\"disk_hits\":1"), std::string::npos) << J;
  }
}

TEST(DiskServiceTest, SchemeQueriesFromDiskHandleShadowedAndUnknownNames) {
  ScratchDir Dir("schemes");

  // `pick` is bound twice at top level. Compiler::schemeOf answers for
  // the outermost binding (later rebindings dropped), and the persisted
  // table must encode the same rule — a disk entry that kept both rows,
  // or the wrong one, would flip the answer on a warm restart.
  const char *Shadowed = R"(
fun pick x = x
fun pick p = #1 p
;pick (1, 2)
)";

  // Ground truth from a fresh compile, no caches anywhere.
  std::string FreshScheme;
  {
    Compiler C;
    auto Unit = C.compile(Shadowed);
    ASSERT_NE(Unit, nullptr);
    FreshScheme = C.schemeOf(*Unit, "pick");
    ASSERT_FALSE(FreshScheme.empty()) << "outermost pick is polymorphic";
    EXPECT_EQ(C.schemeOf(*Unit, "nosuch"), "");
  }

  Request Req;
  Req.Source = Shadowed;
  Req.Run = false;
  Req.SchemeNames = {"pick", "nosuch"};

  Response Cold;
  {
    Service Svc(diskServiceConfig(Dir.str(), 1));
    Cold = Svc.submit(Req).get();
    ASSERT_EQ(Cold.Status, RequestOutcome::Ok) << Cold.Diagnostics;
    ASSERT_EQ(Cold.Schemes.size(), 2u);
    EXPECT_EQ(Cold.Schemes[0].second, FreshScheme);
    EXPECT_EQ(Cold.Schemes[1].second, "");
  }

  // Warm restart: the table-based answers from the disk entry are the
  // bytes the fresh compile produced — shadowed and unknown alike.
  {
    Service Svc(diskServiceConfig(Dir.str(), 1));
    Response Warm = Svc.submit(Req).get();
    ASSERT_EQ(Warm.Status, RequestOutcome::Ok) << Warm.Diagnostics;
    EXPECT_TRUE(Warm.CacheHit);
    EXPECT_EQ(Svc.stats().DiskHits, 1u);
    ASSERT_EQ(Warm.Schemes.size(), 2u);
    EXPECT_EQ(Warm.Schemes[0].second, FreshScheme);
    EXPECT_EQ(Warm.Schemes[1].second, "");
    EXPECT_EQ(Warm.Schemes, Cold.Schemes);
  }
}

TEST(DiskServiceTest, RunRequestExecutesStraightFromADiskEntry) {
  ScratchDir Dir("hydrate");

  Request Static;
  Static.Source = ComposeProgram;
  Static.Run = false;
  {
    Service Svc(diskServiceConfig(Dir.str(), 1));
    ASSERT_EQ(Svc.submit(Static).get().Status, RequestOutcome::Ok);
  }

  Service Svc(diskServiceConfig(Dir.str(), 1));
  // A static request is served straight from disk...
  Response FromDisk = Svc.submit(Static).get();
  EXPECT_TRUE(FromDisk.CacheHit);
  ASSERT_EQ(Svc.stats().DiskHits, 1u);

  // ...and so is a Run request: the entry's embedded flat unit executes
  // directly — a cache hit with zero compile phases, not a hydration
  // recompile.
  Request Run;
  Run.Source = ComposeProgram;
  Run.EvalOpts.GcThresholdWords = 2048;
  Response First = Svc.submit(Run).get();
  EXPECT_EQ(First.Status, RequestOutcome::Ok) << First.Error;
  EXPECT_TRUE(First.CacheHit) << "disk entries are runnable as loaded";
  EXPECT_EQ(First.ResultText, "21");
  EXPECT_EQ(First.Printed, FromDisk.Printed);
  for (const PhaseProfile &P : First.Profiles) {
    if (P.Name != Compiler::RunPhaseName)
      EXPECT_TRUE(P.Skipped) << P.Name << " ran on a disk hit";
  }
  EXPECT_EQ(Svc.stats().DiskHydrations, 0u)
      << "no silent recompile happened";

  Response Second = Svc.submit(Run).get();
  EXPECT_EQ(Second.Status, RequestOutcome::Ok);
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_EQ(Second.ResultText, First.ResultText);
}

TEST(DiskServiceTest, CorruptEntryDegradesToARecompileNeverAWrongAnswer) {
  ScratchDir Dir("degrade");

  Request Req;
  Req.Source = ComposeProgram;
  Req.Run = false;
  Response Cold;
  {
    Service Svc(diskServiceConfig(Dir.str(), 1));
    Cold = Svc.submit(Req).get();
    ASSERT_EQ(Cold.Status, RequestOutcome::Ok);
  }

  // Smash the entry: flip the magic of the one file in the directory.
  CacheKey K = CacheKey::of(Req.Source, Req.Opts);
  fs::path File = Dir.Path / DiskCache::entryFileName(K.Hash);
  std::string Bytes = readFileBytes(File);
  ASSERT_FALSE(Bytes.empty());
  Bytes[0] ^= 0xFF;
  writeFileBytes(File, Bytes);

  Service Svc(diskServiceConfig(Dir.str(), 1));
  Response R = Svc.submit(Req).get();
  EXPECT_EQ(R.Status, RequestOutcome::Ok) << R.Diagnostics;
  EXPECT_FALSE(R.CacheHit) << "the reject fell through to a compile";
  EXPECT_EQ(R.Printed, Cold.Printed) << "recompiled, byte-identical";
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.DiskLoadRejects, 1u);
  EXPECT_EQ(S.DiskHits, 0u);
}

TEST(DiskServiceTest, CacheDirWithoutMemoryTierStaysDisabled) {
  ScratchDir Dir("disabled");
  ServiceConfig Cfg = diskServiceConfig((Dir.Path / "sub").string(), 1);
  Cfg.CacheCapacity = 0; // no memory tier -> no disk tier either
  Service Svc(Cfg);

  Request Req;
  Req.Source = "1 + 1";
  EXPECT_EQ(Svc.submit(Req).get().Status, RequestOutcome::Ok);
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.DiskHits + S.DiskMisses + S.DiskWriteErrors, 0u);
  EXPECT_FALSE(fs::exists(Dir.Path / "sub")) << "no directory is created";
}

TEST(DiskServiceTest, ConcurrentServicesShareOneDirectory) {
  // Two multi-worker services racing on one cache directory: atomic
  // temp+rename publication means every entry file is complete, every
  // response correct, and a third (cold) service warm-starts from what
  // they left behind. TSan-checked.
  ScratchDir Dir("shared");
  std::vector<std::string> Sources;
  for (int I = 0; I < 12; ++I)
    Sources.push_back("10 + " + std::to_string(I));

  {
    Service A(diskServiceConfig(Dir.str(), 4));
    Service B(diskServiceConfig(Dir.str(), 4));
    std::vector<std::future<Response>> Futures;
    for (const std::string &S : Sources) {
      Request Req;
      Req.Source = S;
      Req.Run = false;
      Futures.push_back(A.submit(Req));
      Futures.push_back(B.submit(Req));
    }
    for (auto &F : Futures) {
      Response R = F.get();
      EXPECT_EQ(R.Status, RequestOutcome::Ok) << R.Diagnostics;
      EXPECT_TRUE(R.CompileOk);
    }
    EXPECT_EQ(A.stats().DiskWriteErrors + B.stats().DiskWriteErrors, 0u);
  }
  EXPECT_EQ(entryCount(Dir.Path), Sources.size());

  Service C(diskServiceConfig(Dir.str(), 2));
  std::vector<std::future<Response>> Futures;
  for (const std::string &S : Sources) {
    Request Req;
    Req.Source = S;
    Req.Run = false;
    Futures.push_back(C.submit(Req));
  }
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().CacheHit);
  EXPECT_EQ(C.stats().DiskHits, Sources.size());
}

//===----------------------------------------------------------------------===//
// The sweeper: bounded growth.
//===----------------------------------------------------------------------===//

/// Stores \p N distinct tiny entries and returns their keys, oldest
/// mtime first: entry I's file is back-dated (N - I) minutes so the
/// LRU order under test is explicit, not a racy store-order artifact.
std::vector<CacheKey> storeGradedEntries(const DiskCache &Disk,
                                         const fs::path &Dir, size_t N) {
  std::vector<CacheKey> Keys;
  CompileOptions Opts;
  for (size_t I = 0; I < N; ++I) {
    std::string Src = ";1 + " + std::to_string(I) + "\n";
    CacheKey K = CacheKey::of(Src, Opts);
    CachedCompileRef V = compileShared(Src, Opts);
    Disk.store(K, *V);
    fs::path P = Dir / DiskCache::entryFileName(K.Hash);
    EXPECT_TRUE(fs::exists(P));
    fs::last_write_time(P, fs::file_time_type::clock::now() -
                               std::chrono::minutes((N - I) * 10));
    Keys.push_back(K);
  }
  return Keys;
}

uint64_t dirEntryBytes(const fs::path &Dir) {
  uint64_t Total = 0;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".rmlc")
      Total += fs::file_size(E.path());
  return Total;
}

TEST(DiskCacheSweepTest, AllZeroConfigIsANoOp) {
  ScratchDir Dir("sweep_noop");
  DiskCache Disk(Dir.str());
  storeGradedEntries(Disk, Dir.Path, 3);
  EXPECT_EQ(Disk.sweepNow({}), 0u);
  EXPECT_EQ(entryCount(Dir.Path), 3u);
  EXPECT_EQ(Disk.counters().SweptFiles, 0u);
  // startSweeper with an all-zero config starts nothing; stop is a
  // no-op either way.
  Disk.startSweeper({});
  Disk.stopSweeper();
}

TEST(DiskCacheSweepTest, ByteWatermarkEvictsOldestFirst) {
  ScratchDir Dir("sweep_bytes");
  DiskCache Disk(Dir.str());
  std::vector<CacheKey> Keys = storeGradedEntries(Disk, Dir.Path, 4);
  uint64_t Total = dirEntryBytes(Dir.Path);
  uint64_t Oldest =
      fs::file_size(Dir.Path / DiskCache::entryFileName(Keys[0].Hash));

  // One byte under the total: exactly the oldest entry must go.
  DiskCache::SweepConfig Cfg;
  Cfg.MaxBytes = Total - 1;
  EXPECT_EQ(Disk.sweepNow(Cfg), 1u);
  EXPECT_FALSE(fs::exists(Dir.Path / DiskCache::entryFileName(Keys[0].Hash)));
  for (size_t I = 1; I < Keys.size(); ++I)
    EXPECT_TRUE(fs::exists(Dir.Path / DiskCache::entryFileName(Keys[I].Hash)))
        << "entry " << I << " should have survived";
  EXPECT_LE(dirEntryBytes(Dir.Path), Cfg.MaxBytes);

  DiskCache::Counters C = Disk.counters();
  EXPECT_EQ(C.SweptFiles, 1u);
  EXPECT_EQ(C.SweptBytes, Oldest);
  EXPECT_EQ(C.SweepErrors, 0u);

  // Tighten to one byte: everything sweepable goes.
  Cfg.MaxBytes = 1;
  EXPECT_EQ(Disk.sweepNow(Cfg), 3u);
  EXPECT_EQ(entryCount(Dir.Path), 0u);
  EXPECT_EQ(Disk.counters().SweptBytes, Total);
}

TEST(DiskCacheSweepTest, AgeCutOffEvictsStaleEntriesOnly) {
  ScratchDir Dir("sweep_age");
  DiskCache Disk(Dir.str());
  // Entries are back-dated 30/20/10 minutes old (oldest first).
  std::vector<CacheKey> Keys = storeGradedEntries(Disk, Dir.Path, 3);

  DiskCache::SweepConfig Cfg;
  Cfg.MaxAgeSeconds = 15 * 60; // the 30- and 20-minute entries are stale
  EXPECT_EQ(Disk.sweepNow(Cfg), 2u);
  EXPECT_FALSE(fs::exists(Dir.Path / DiskCache::entryFileName(Keys[0].Hash)));
  EXPECT_FALSE(fs::exists(Dir.Path / DiskCache::entryFileName(Keys[1].Hash)));
  EXPECT_TRUE(fs::exists(Dir.Path / DiskCache::entryFileName(Keys[2].Hash)));
  // A second pass finds nothing new to do.
  EXPECT_EQ(Disk.sweepNow(Cfg), 0u);
}

TEST(DiskCacheSweepTest, ForeignAndTempFilesAreNeverSwept) {
  ScratchDir Dir("sweep_foreign");
  DiskCache Disk(Dir.str());
  storeGradedEntries(Disk, Dir.Path, 2);
  // An operator note, a mid-publication temp file, and an almost-entry
  // with the wrong name shape: none of these are the sweeper's to take.
  writeFileBytes(Dir.Path / "README.txt", "operator notes");
  writeFileBytes(Dir.Path / ".0123456789abcdef.rmlc.tmp.1.2", "half-written");
  writeFileBytes(Dir.Path / "short.rmlc", "not a hash name");

  DiskCache::SweepConfig Cfg;
  Cfg.MaxBytes = 1; // evict every real entry
  EXPECT_EQ(Disk.sweepNow(Cfg), 2u);
  EXPECT_TRUE(fs::exists(Dir.Path / "README.txt"));
  EXPECT_TRUE(fs::exists(Dir.Path / ".0123456789abcdef.rmlc.tmp.1.2"));
  EXPECT_TRUE(fs::exists(Dir.Path / "short.rmlc"));
  EXPECT_EQ(Disk.counters().SweepErrors, 0u);
}

TEST(DiskCacheSweepTest, SweptEntryDegradesToAMissAndCanBeRestored) {
  ScratchDir Dir("sweep_miss");
  DiskCache Disk(Dir.str());
  CompileOptions Opts;
  CacheKey K = CacheKey::of(ComposeProgram, Opts);
  CachedCompileRef V = compileShared(ComposeProgram, Opts);
  Disk.store(K, *V);
  ASSERT_NE(Disk.load(K), nullptr);

  DiskCache::SweepConfig Cfg;
  Cfg.MaxBytes = 1;
  EXPECT_EQ(Disk.sweepNow(Cfg), 1u);
  // The eviction costs exactly one recompile, never a wrong answer.
  EXPECT_EQ(Disk.load(K), nullptr);
  EXPECT_GE(Disk.counters().Misses, 1u);
  Disk.store(K, *V);
  CachedCompileRef Back = Disk.load(K);
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(Back->Printed, V->Printed);
}

TEST(DiskCacheSweepTest, MissingDirectoryCountsASweepError) {
  ScratchDir Dir("sweep_err");
  DiskCache Disk(Dir.str());
  fs::remove_all(Dir.Path);
  DiskCache::SweepConfig Cfg;
  Cfg.MaxBytes = 1;
  EXPECT_EQ(Disk.sweepNow(Cfg), 0u);
  EXPECT_EQ(Disk.counters().SweepErrors, 1u);
}

TEST(DiskCacheSweepTest, BackgroundSweeperBoundsTheDirectory) {
  ScratchDir Dir("sweep_bg");
  DiskCache Disk(Dir.str());
  std::vector<CacheKey> Keys = storeGradedEntries(Disk, Dir.Path, 4);

  DiskCache::SweepConfig Cfg;
  Cfg.MaxBytes = 1;
  Cfg.IntervalMillis = 5;
  Disk.startSweeper(Cfg);
  Disk.startSweeper(Cfg); // idempotent: the second call is ignored
  // The thread sweeps once immediately; poll until it has.
  for (int I = 0; I < 1000 && entryCount(Dir.Path) > 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(entryCount(Dir.Path), 0u);
  EXPECT_EQ(Disk.counters().SweptFiles, Keys.size());
  Disk.stopSweeper();
  Disk.stopSweeper(); // safe again after it stopped
}

TEST(DiskCacheSweepTest, SweepRacesStoresAndLoadsSafely) {
  ScratchDir Dir("sweep_race");
  DiskCache Disk(Dir.str());
  // A watermark of one byte keeps the sweeper permanently hungry while
  // writers republish and readers load the same keys: every load must
  // be a verified hit or a clean miss — a torn read would reject
  // (LoadRejects) and fail the test.
  DiskCache::SweepConfig Cfg;
  Cfg.MaxBytes = 1;
  Cfg.IntervalMillis = 1;
  Disk.startSweeper(Cfg);

  CompileOptions Opts;
  std::vector<std::string> Sources;
  std::vector<CacheKey> Keys;
  std::vector<CachedCompileRef> Values;
  for (int I = 0; I < 3; ++I) {
    Sources.push_back(";2 * " + std::to_string(I) + "\n");
    Keys.push_back(CacheKey::of(Sources.back(), Opts));
    Values.push_back(compileShared(Sources.back(), Opts));
  }

  std::vector<std::thread> Workers;
  for (int T = 0; T < 3; ++T)
    Workers.emplace_back([&, T] {
      for (int I = 0; I < 200; ++I) {
        size_t K = static_cast<size_t>((T + I) % 3);
        Disk.store(Keys[K], *Values[K]);
        CachedCompileRef L = Disk.load(Keys[K]);
        if (L) { // a hit must be the genuine article
          EXPECT_EQ(L->Printed, Values[K]->Printed);
        }
      }
    });
  for (std::thread &W : Workers)
    W.join();
  Disk.stopSweeper();

  DiskCache::Counters C = Disk.counters();
  EXPECT_EQ(C.LoadRejects, 0u) << "a sweep exposed a torn entry";
  EXPECT_GT(C.SweptFiles, 0u);
}

} // namespace
