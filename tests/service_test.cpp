//===- tests/service_test.cpp - Service-layer concurrency tests -----------===//
//
// The concurrent compile-and-run service: thread-safety of independent
// Compilers, arena behaviour under reuse, the content-addressed LRU
// compile cache, and the thread-pool service end to end (mixed batches,
// backpressure, statistics). Labelled `service` in ctest and expected to
// be clean under -DRML_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "bench/Programs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

using namespace rml;
using namespace rml::service;

namespace {

/// A small program exercising the interesting machinery — polymorphic
/// closures, letregion placement and enough allocation to trigger GC —
/// while staying fast under ThreadSanitizer.
const char *ComposeProgram = R"(
fun compose fg = fn x => #1 fg (#2 fg x)
fun iter n acc =
  if n = 0 then acc
  else let val h = compose (fn x => x + 1, fn x => x * 2)
       in iter (n - 1) acc + h n - h n end
;iter 600 21
)";

//===----------------------------------------------------------------------===//
// Satellite: two Compilers on different threads share no mutable state.
//===----------------------------------------------------------------------===//

TEST(CompilerThreading, EightCompilersBitIdentical) {
  // Baseline on the main thread.
  Compiler Base;
  auto BaseUnit = Base.compile(ComposeProgram);
  ASSERT_NE(BaseUnit, nullptr) << Base.diagnostics().str();
  std::string BasePrinted = Base.printProgram(*BaseUnit);
  rt::EvalOptions Eval;
  Eval.GcThresholdWords = 2048; // force several collections
  rt::RunResult BaseRun = Base.run(*BaseUnit, Eval);
  ASSERT_EQ(BaseRun.Outcome, rt::RunOutcome::Ok) << BaseRun.Error;

  constexpr int N = 8;
  std::string Printed[N];
  uint64_t AllocWords[N];
  std::string Results[N];
  std::atomic<int> Failures{0};

  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      Compiler C;
      auto Unit = C.compile(ComposeProgram);
      if (!Unit) {
        ++Failures;
        return;
      }
      Printed[I] = C.printProgram(*Unit);
      rt::EvalOptions E;
      E.GcThresholdWords = 2048;
      rt::RunResult R = C.run(*Unit, E);
      if (R.Outcome != rt::RunOutcome::Ok) {
        ++Failures;
        return;
      }
      AllocWords[I] = R.Heap.AllocWords;
      Results[I] = R.ResultText;
    });
  for (std::thread &T : Threads)
    T.join();

  ASSERT_EQ(Failures.load(), 0);
  for (int I = 0; I < N; ++I) {
    EXPECT_EQ(Printed[I], BasePrinted) << "thread " << I;
    EXPECT_EQ(AllocWords[I], BaseRun.Heap.AllocWords) << "thread " << I;
    EXPECT_EQ(Results[I], BaseRun.ResultText) << "thread " << I;
  }
}

TEST(CompilerThreading, SharedUnitConcurrentRuns) {
  // One frozen compilation, many concurrent read-only runs.
  CachedCompileRef CC = compileShared(ComposeProgram, CompileOptions{});
  ASSERT_TRUE(CC->ok()) << CC->Diagnostics;

  rt::EvalOptions Eval;
  Eval.GcThresholdWords = 2048;
  rt::RunResult Base = CC->run(Eval);
  ASSERT_EQ(Base.Outcome, rt::RunOutcome::Ok) << Base.Error;

  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < 8; ++I)
    Threads.emplace_back([&] {
      rt::EvalOptions E;
      E.GcThresholdWords = 2048;
      rt::RunResult R = CC->run(E);
      if (R.Outcome != rt::RunOutcome::Ok ||
          R.ResultText != Base.ResultText ||
          R.Heap.AllocWords != Base.Heap.AllocWords)
        ++Mismatches;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);
}

//===----------------------------------------------------------------------===//
// Satellite: one Compiler across many requests.
//===----------------------------------------------------------------------===//

TEST(CompilerReuse, HundredProgramsOneInstance) {
  Compiler C;
  std::vector<std::unique_ptr<CompiledUnit>> Keep;
  std::vector<size_t> Totals;
  for (int I = 0; I < 100; ++I) {
    auto Unit = C.compile(ComposeProgram);
    ASSERT_NE(Unit, nullptr) << "compile " << I << ":\n"
                             << C.diagnostics().str();
    EXPECT_FALSE(C.diagnostics().hasErrors());
    if (I % 10 == 0)
      Keep.push_back(std::move(Unit)); // earlier units must stay valid
    Totals.push_back(C.arenaFootprint().total());
  }

  // Arena growth is linear: after the first compile (which also builds
  // the hash-consed ground-type singletons) every compile of the same
  // source adds exactly the same number of nodes.
  size_t Delta = Totals[2] - Totals[1];
  EXPECT_GT(Delta, 0u);
  for (size_t I = 2; I + 1 < Totals.size(); ++I)
    EXPECT_EQ(Totals[I + 1] - Totals[I], Delta) << "compile " << I + 1;

  // Units kept from earlier compiles are still valid and runnable.
  rt::RunResult First = C.run(*Keep.front());
  rt::RunResult Last = C.run(*Keep.back());
  ASSERT_EQ(First.Outcome, rt::RunOutcome::Ok) << First.Error;
  ASSERT_EQ(Last.Outcome, rt::RunOutcome::Ok) << Last.Error;
  EXPECT_EQ(First.ResultText, Last.ResultText);
  EXPECT_EQ(First.Heap.AllocWords, Last.Heap.AllocWords);
}

TEST(CompilerReuse, CompileAndRunConvenience) {
  Compiler C;
  CompileAndRunResult R = C.compileAndRun("1 + 2 * 3");
  ASSERT_TRUE(R.ok()) << C.diagnostics().str();
  EXPECT_EQ(R.Run.ResultText, "7");

  CompileAndRunResult Bad = C.compileAndRun("nosuchvar + 1");
  EXPECT_EQ(Bad.Unit, nullptr);
  EXPECT_FALSE(Bad.ok());
  EXPECT_NE(C.diagnostics().str().find("unbound variable 'nosuchvar'"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Satellite: the sharded LRU compile cache.
//===----------------------------------------------------------------------===//

/// The first \p N integer-literal programs (all valid MiniML) whose
/// cache keys land in \p Anchor's shard. The cache is sharded by key
/// hash, so per-shard LRU and eviction semantics are only observable
/// through keys that collide on one shard.
std::vector<std::string> sameShardSources(size_t N, const CompileOptions &Opts,
                                          const std::string &Anchor) {
  size_t Target = CompileCache::shardOf(CacheKey::of(Anchor, Opts));
  std::vector<std::string> Out;
  for (int I = 0; Out.size() < N; ++I) {
    std::string S = std::to_string(I);
    if (S != Anchor &&
        CompileCache::shardOf(CacheKey::of(S, Opts)) == Target)
      Out.push_back(S);
  }
  return Out;
}

TEST(CompileCacheTest, CapacityEvictionOrderWithinAShard) {
  // Aggregate capacity 3 per shard; four keys in one shard exercise
  // exactly the old single-list LRU semantics inside that shard.
  CompileCache Cache(3 * CompileCache::NumShards);
  CompileOptions Opts;
  std::vector<std::string> Src = sameShardSources(4, Opts, "0");
  CacheKey K1 = CacheKey::of(Src[0], Opts), K2 = CacheKey::of(Src[1], Opts),
           K3 = CacheKey::of(Src[2], Opts), K4 = CacheKey::of(Src[3], Opts);

  Cache.insert(K1, compileShared(Src[0], Opts));
  Cache.insert(K2, compileShared(Src[1], Opts));
  Cache.insert(K3, compileShared(Src[2], Opts));
  EXPECT_EQ(Cache.size(), 3u);
  // Recency is front-first: K3, K2, K1 (one shard populated, so the
  // global merge is exactly the shard's order).
  EXPECT_EQ(Cache.recencyHashes(),
            (std::vector<uint64_t>{K3.Hash, K2.Hash, K1.Hash}));

  // Touching K1 promotes it, so K2 is now least recently used...
  EXPECT_NE(Cache.lookup(K1), nullptr);
  // ...and inserting a fourth same-shard entry evicts K2, not K1.
  Cache.insert(K4, compileShared(Src[3], Opts));
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.lookup(K2), nullptr);
  EXPECT_NE(Cache.lookup(K1), nullptr);
  EXPECT_NE(Cache.lookup(K3), nullptr);
  EXPECT_NE(Cache.lookup(K4), nullptr);

  CompileCache::Counters C = Cache.counters();
  EXPECT_EQ(C.Insertions, 4u);
  EXPECT_EQ(C.Evictions, 1u);
  EXPECT_EQ(C.Hits, 4u);   // K1, K1, K3, K4
  EXPECT_EQ(C.Misses, 1u); // K2 after eviction
}

TEST(CompileCacheTest, CostAwareEvictionOrderWithinAShard) {
  CompileOptions Opts;
  // The two literals must share the big program's shard for the cost
  // budget (a per-shard bound) to weigh them against each other.
  std::vector<std::string> Src = sameShardSources(2, Opts, ComposeProgram);
  CachedCompileRef Small1 = compileShared(Src[0], Opts);
  CachedCompileRef Small2 = compileShared(Src[1], Opts);
  CachedCompileRef Big = compileShared(ComposeProgram, Opts);
  ASSERT_TRUE(Small1->ok() && Small2->ok() && Big->ok());
  // Cost is the frozen owner's arena footprint: same-shape programs
  // weigh the same, and the real program dwarfs the literals.
  ASSERT_EQ(Small1->Cost, Small2->Cost);
  ASSERT_GT(Big->Cost, 2 * Small1->Cost);

  // Entry capacity far above what's inserted: only the cost bound can
  // evict. The aggregate cost capacity divides by NumShards, leaving
  // each shard room for one small entry plus the big one.
  CompileCache Cache(10 * CompileCache::NumShards,
                     CompileCache::NumShards * (Small1->Cost + Big->Cost));
  CacheKey K1 = CacheKey::of(Src[0], Opts), K2 = CacheKey::of(Src[1], Opts),
           KBig = CacheKey::of(ComposeProgram, Opts);
  Cache.insert(K1, Small1);
  Cache.insert(K2, Small2);
  EXPECT_EQ(Cache.totalCost(), 2 * Small1->Cost);
  EXPECT_EQ(Cache.counters().Evictions, 0u);

  // Touch K1 so K2 is the LRU victim, then let the big entry blow the
  // shard's cost budget: K2 goes, K1 stays — eviction follows recency
  // but is triggered by weight, not count.
  EXPECT_NE(Cache.lookup(K1), nullptr);
  Cache.insert(KBig, Big);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.lookup(K2), nullptr);
  EXPECT_NE(Cache.lookup(K1), nullptr);
  EXPECT_NE(Cache.lookup(KBig), nullptr);
  EXPECT_EQ(Cache.counters().Evictions, 1u);
  EXPECT_EQ(Cache.totalCost(), Small1->Cost + Big->Cost);
  EXPECT_LE(Cache.totalCost(), Cache.costCapacity());
}

TEST(CompileCacheTest, FreshestEntrySurvivesAnImpossibleCostBound) {
  // A bound smaller than any entry: the newest insert in a shard still
  // stays resident (evicting it would force a recompile per request),
  // while every older same-shard entry is pushed out.
  CompileOptions Opts;
  // Aggregate NumShards -> one cost unit per shard.
  CompileCache Cache(10 * CompileCache::NumShards, CompileCache::NumShards);
  std::vector<std::string> Src = sameShardSources(2, Opts, "0");
  CacheKey K1 = CacheKey::of(Src[0], Opts), K2 = CacheKey::of(Src[1], Opts);
  Cache.insert(K1, compileShared(Src[0], Opts));
  EXPECT_EQ(Cache.size(), 1u); // alone over budget, but kept
  Cache.insert(K2, compileShared(Src[1], Opts));
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Cache.lookup(K1), nullptr);
  EXPECT_NE(Cache.lookup(K2), nullptr);
}

TEST(CompileCacheTest, KeysSpreadAcrossShards) {
  // Fibonacci mixing must not funnel consecutive FNV hashes into one
  // shard: a hundred tiny programs should touch most of the 8 shards.
  CompileOptions Opts;
  std::set<size_t> Used;
  for (int I = 0; I < 100; ++I)
    Used.insert(CompileCache::shardOf(CacheKey::of(std::to_string(I), Opts)));
  EXPECT_GE(Used.size(), 4u);
}

TEST(CompileCacheTest, RecencyMergesAcrossShards) {
  // Keys landing in different shards still report one global
  // most-to-least-recent order (per-entry stamps, not list position).
  CompileCache Cache(64);
  CompileOptions Opts;
  std::vector<CacheKey> Keys;
  for (int I = 0; I < 12; ++I) {
    std::string S = std::to_string(I);
    Keys.push_back(CacheKey::of(S, Opts));
    Cache.insert(Keys.back(), compileShared(S, Opts));
  }
  std::vector<uint64_t> Expect;
  for (auto It = Keys.rbegin(); It != Keys.rend(); ++It)
    Expect.push_back(It->Hash);
  EXPECT_EQ(Cache.recencyHashes(), Expect);

  // A lookup refreshes the entry to the global front even when fresher
  // entries live in other shards.
  EXPECT_NE(Cache.lookup(Keys[0]), nullptr);
  EXPECT_EQ(Cache.recencyHashes().front(), Keys[0].Hash);
}

TEST(CompileCacheTest, ShardedStressUnderContention) {
  // Eight threads hammer one sharded cache with overlapping keys and a
  // cost bound tight enough to keep evicting. TSan-checked; afterwards
  // the aggregate invariants must hold.
  CompileOptions Opts;
  CachedCompileRef Probe = compileShared("0", Opts);
  ASSERT_TRUE(Probe->ok());
  // Room for ~3 literal-sized entries per shard by cost.
  CompileCache Cache(4 * CompileCache::NumShards,
                     3 * Probe->Cost * CompileCache::NumShards);

  constexpr int Threads = 8, Iters = 120, KeySpace = 24;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      for (int I = 0; I < Iters; ++I) {
        std::string S = std::to_string((T * 7 + I) % KeySpace);
        CacheKey K = CacheKey::of(S, Opts);
        CachedCompileRef CC = Cache.lookup(K);
        if (!CC) {
          CC = compileShared(S, Opts);
          Cache.insert(K, CC);
        }
        if (!CC || !CC->ok())
          ++Failures;
      }
    });
  for (std::thread &T : Pool)
    T.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_LE(Cache.size(), Cache.capacity());
  CompileCache::Counters C = Cache.counters();
  EXPECT_EQ(C.Hits + C.Misses, uint64_t(Threads) * Iters);
  EXPECT_GE(C.Insertions, C.Misses > 0 ? 1u : 0u);
  // recencyHashes() is consistent after the dust settles: every
  // resident key exactly once.
  std::vector<uint64_t> Order = Cache.recencyHashes();
  EXPECT_EQ(Order.size(), Cache.size());
  std::sort(Order.begin(), Order.end());
  EXPECT_EQ(std::adjacent_find(Order.begin(), Order.end()), Order.end());
}

TEST(CompileCacheTest, OptionsEnterTheKey) {
  CompileOptions Rg, RgMinus, NoCheck;
  RgMinus.Strat = Strategy::RgMinus;
  NoCheck.Check = false;
  EXPECT_NE(CacheKey::of("1", Rg), CacheKey::of("1", RgMinus));
  EXPECT_NE(CacheKey::of("1", Rg), CacheKey::of("1", NoCheck));
  EXPECT_NE(CacheKey::of("1", Rg), CacheKey::of("2", Rg));
  EXPECT_EQ(CacheKey::of("1", Rg), CacheKey::of("1", CompileOptions{}));
}

TEST(CompileCacheTest, ZeroCapacityDisables) {
  CompileCache Cache(0);
  CompileOptions Opts;
  CacheKey K = CacheKey::of("1", Opts);
  Cache.insert(K, compileShared("1", Opts));
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.lookup(K), nullptr);
}

TEST(CompileCacheTest, FailedCompilesAreCachedWithDiagnostics) {
  Service Svc({/*Workers=*/2, /*QueueCapacity=*/16, /*CacheCapacity=*/8});
  Request Bad;
  Bad.Source = "nosuchvar + 1";
  Response R1 = Svc.submit(Bad).get();
  Response R2 = Svc.submit(Bad).get();
  EXPECT_FALSE(R1.CompileOk);
  EXPECT_FALSE(R2.CompileOk);
  EXPECT_TRUE(R2.CacheHit);
  EXPECT_EQ(R1.Diagnostics, R2.Diagnostics);
  EXPECT_NE(R1.Diagnostics.find("unbound variable 'nosuchvar'"),
            std::string::npos);
}

/// Cache hits must be semantically identical to cold compiles for real
/// corpus programs under both GC-safe and pre-paper strategies.
class CacheFidelityTest
    : public ::testing::TestWithParam<std::tuple<std::string, Strategy>> {};

TEST_P(CacheFidelityTest, HitMatchesColdCompile) {
  const auto &[Name, Strat] = GetParam();
  const bench::BenchProgram *P = bench::findBenchmark(Name);
  ASSERT_NE(P, nullptr);

  CompileOptions Opts;
  Opts.Strat = Strat;

  // Cold reference on a private compiler.
  Compiler C;
  auto Unit = C.compile(P->Source, Opts);
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();
  std::string ColdPrinted = C.printProgram(*Unit);
  rt::RunResult Cold = C.run(*Unit);
  ASSERT_EQ(Cold.Outcome, rt::RunOutcome::Ok) << Cold.Error;

  // Same program twice through a one-worker service: miss then hit.
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/4, /*CacheCapacity=*/8});
  Request Req;
  Req.Source = P->Source;
  Req.Opts = Opts;
  Response Miss = Svc.submit(Req).get();
  Response Hit = Svc.submit(Req).get();

  ASSERT_TRUE(Miss.CompileOk) << Miss.Diagnostics;
  ASSERT_TRUE(Hit.CompileOk) << Hit.Diagnostics;
  EXPECT_FALSE(Miss.CacheHit);
  EXPECT_TRUE(Hit.CacheHit);
  for (const Response *R : {&Miss, &Hit}) {
    EXPECT_EQ(R->Printed, ColdPrinted) << Name;
    EXPECT_EQ(R->Outcome, rt::RunOutcome::Ok) << Name;
    EXPECT_EQ(R->ResultText, Cold.ResultText) << Name;
    EXPECT_EQ(R->Output, Cold.Output) << Name;
    EXPECT_EQ(R->Heap.AllocWords, Cold.Heap.AllocWords) << Name;
    EXPECT_EQ(R->Steps, Cold.Steps) << Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CacheFidelityTest,
    ::testing::Combine(::testing::Values("fib", "nrev", "strings", "refs",
                                         "hof"),
                       ::testing::Values(Strategy::Rg, Strategy::RgMinus)),
    [](const auto &Info) {
      return std::get<0>(Info.param) +
             (std::get<1>(Info.param) == Strategy::Rg ? "_rg" : "_rgminus");
    });

//===----------------------------------------------------------------------===//
// Tentpole: the service end to end.
//===----------------------------------------------------------------------===//

TEST(ServiceTest, MixedBatchEightWorkersNoCrossContamination) {
  Service Svc({/*Workers=*/8, /*QueueCapacity=*/64, /*CacheCapacity=*/64});

  // 60 requests: i % 3 == 2 is ill-typed with a request-unique unbound
  // variable; the rest compute a request-unique value. Every 10th
  // request duplicates request 0 to exercise concurrent cache hits.
  constexpr int N = 60;
  std::vector<std::future<Response>> Futures;
  std::vector<int> Kind(N); // 0 = duplicate, 1 = unique ok, 2 = ill-typed
  for (int I = 0; I < N; ++I) {
    Request Req;
    if (I > 0 && I % 10 == 0) {
      Kind[I] = 0;
      Req.Source = "1 + 0";
    } else if (I % 3 == 2) {
      Kind[I] = 2;
      Req.Source = "nosuchvar" + std::to_string(I) + " + 1";
    } else {
      Kind[I] = 1;
      Req.Source = "1 + " + std::to_string(I);
    }
    if (I == 0)
      Req.Source = "1 + 0";
    Futures.push_back(Svc.submit(std::move(Req)));
  }

  for (int I = 0; I < N; ++I) {
    Response R = Futures[I].get();
    if (Kind[I] == 2) {
      EXPECT_FALSE(R.CompileOk) << "request " << I;
      // The diagnostic names THIS request's variable — routed to the
      // right response, not another request's.
      EXPECT_NE(R.Diagnostics.find("nosuchvar" + std::to_string(I)),
                std::string::npos)
          << "request " << I << " got: " << R.Diagnostics;
      EXPECT_FALSE(R.Ran);
    } else {
      ASSERT_TRUE(R.CompileOk) << "request " << I << ": " << R.Diagnostics;
      EXPECT_TRUE(R.Diagnostics.empty()) << "request " << I;
      ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
      int Expected = Kind[I] == 0 ? 1 : 1 + I;
      EXPECT_EQ(R.ResultText, std::to_string(Expected)) << "request " << I;
    }
  }

  uint64_t IllTyped = static_cast<uint64_t>(
      std::count(Kind.begin(), Kind.end(), 2));
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Submitted, static_cast<uint64_t>(N));
  EXPECT_EQ(S.Completed, static_cast<uint64_t>(N));
  EXPECT_EQ(S.CacheHits + S.CacheMisses, static_cast<uint64_t>(N));
  EXPECT_GE(S.CacheHits, 1u); // the duplicates
  EXPECT_EQ(S.CompileErrors, IllTyped);
  EXPECT_EQ(S.RunsOk, N - IllTyped);
  EXPECT_EQ(S.QueueDepth, 0u);
}

TEST(ServiceTest, SchemeRenderings) {
  Service Svc({/*Workers=*/2, /*QueueCapacity=*/8, /*CacheCapacity=*/8});
  Request Req;
  Req.Source = R"(
fun compose fg = fn x => #1 fg (#2 fg x)
val h = compose (fn x => x + 1, fn x => x * 2)
;h 20
)";
  Req.SchemeNames = {"compose", "nosuchfun"};
  Response R = Svc.submit(std::move(Req)).get();
  ASSERT_TRUE(R.CompileOk) << R.Diagnostics;
  ASSERT_EQ(R.Schemes.size(), 2u);
  EXPECT_EQ(R.Schemes[0].first, "compose");
  EXPECT_NE(R.Schemes[0].second.find("forall"), std::string::npos);
  EXPECT_EQ(R.Schemes[1].second, "");
  EXPECT_EQ(R.ResultText, "41");
}

TEST(ServiceTest, BackpressureBoundedQueue) {
  Service Svc({/*Workers=*/2, /*QueueCapacity=*/4, /*CacheCapacity=*/0});
  std::vector<std::future<Response>> Futures;
  for (int I = 0; I < 40; ++I) {
    Request Req;
    Req.Source = "1 + " + std::to_string(I);
    Futures.push_back(Svc.submit(std::move(Req))); // blocks when full
  }
  for (int I = 0; I < 40; ++I) {
    Response R = Futures[I].get();
    ASSERT_TRUE(R.CompileOk) << R.Diagnostics;
    EXPECT_EQ(R.ResultText, std::to_string(1 + I));
  }
  ServiceStats S = Svc.stats();
  EXPECT_LE(S.QueueHighWater, 4u);
  EXPECT_EQ(S.CacheMisses, 40u); // capacity 0: caching disabled
  EXPECT_EQ(S.CacheHits, 0u);
}

TEST(ServiceTest, ShutdownDrainsThenRejects) {
  Service Svc({/*Workers=*/2, /*QueueCapacity=*/16, /*CacheCapacity=*/8});
  std::vector<std::future<Response>> Futures;
  for (int I = 0; I < 8; ++I) {
    Request Req;
    Req.Source = "2 * " + std::to_string(I);
    Futures.push_back(Svc.submit(std::move(Req)));
  }
  Svc.shutdown(); // drains the queue, joins workers
  for (int I = 0; I < 8; ++I) {
    Response R = Futures[I].get();
    ASSERT_TRUE(R.CompileOk) << R.Diagnostics; // submitted-before: served
    EXPECT_EQ(R.ResultText, std::to_string(2 * I));
  }
  Response Late = Svc.submit(Request{}).get();
  EXPECT_FALSE(Late.CompileOk);
  EXPECT_NE(Late.Diagnostics.find("shut down"), std::string::npos);
}

TEST(ServiceTest, CallbackSubmitCompletesOnAWorkerThread) {
  Service Svc({/*Workers=*/2, /*QueueCapacity=*/8, /*CacheCapacity=*/4});
  std::atomic<bool> Done{false};
  std::string Result;
  std::thread::id CallbackThread;
  Request Req;
  Req.Source = "6 * 7";
  Svc.submit(Req, [&](Response R) {
    EXPECT_EQ(R.Status, RequestOutcome::Ok) << R.Diagnostics;
    Result = R.ResultText;
    CallbackThread = std::this_thread::get_id();
    Done.store(true, std::memory_order_release);
  });
  while (!Done.load(std::memory_order_acquire))
    std::this_thread::yield();
  EXPECT_EQ(Result, "42");
  EXPECT_NE(CallbackThread, std::this_thread::get_id());
  EXPECT_EQ(Svc.stats().Completed, 1u);
}

TEST(ServiceTest, CallbackSubmitAfterShutdownRejectsInline) {
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/4, /*CacheCapacity=*/0});
  Svc.shutdown();
  bool Invoked = false;
  std::thread::id CallbackThread;
  Request Req;
  Req.Source = "1 + 1";
  Svc.submit(Req, [&](Response R) {
    EXPECT_EQ(R.Status, RequestOutcome::Shutdown);
    EXPECT_NE(R.Diagnostics.find("shut down"), std::string::npos);
    CallbackThread = std::this_thread::get_id();
    Invoked = true;
  });
  EXPECT_TRUE(Invoked); // resolved by the time submit() returned
  // Inline on the submitting thread — no worker is left to run it.
  EXPECT_EQ(CallbackThread, std::this_thread::get_id());
}

// Satellite: the saturation gauges. A request parked inside its
// completion callback is still "in flight" (dequeued, not completed);
// the queue depth counts only what is waiting behind it.
TEST(ServiceTest, SaturationGaugesTrackAParkedWorker) {
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/4, /*CacheCapacity=*/0});

  std::atomic<bool> Parked{false};
  std::atomic<bool> Release{false};
  Request Blocker;
  Blocker.Source = "1 + 1";
  Svc.submit(Blocker, [&](Response) {
    Parked.store(true, std::memory_order_release);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!Parked.load(std::memory_order_acquire))
    std::this_thread::yield();

  // The only worker is pinned inside the callback: its request has
  // been dequeued but not yet counted complete.
  ServiceStats Busy = Svc.stats();
  EXPECT_EQ(Busy.InFlight, 1u);
  EXPECT_EQ(Busy.QueueDepth, 0u);
  EXPECT_NE(Busy.json().find("\"in_flight\":1"), std::string::npos);

  // A second request queues up behind it.
  Request Queued;
  Queued.Source = "2 + 2";
  std::future<Response> F = Svc.submit(Queued);
  EXPECT_EQ(Svc.stats().QueueDepth, 1u);

  Release.store(true, std::memory_order_release);
  F.get();
  Svc.shutdown(); // join the worker: the gauges settle deterministically
  ServiceStats Idle = Svc.stats();
  EXPECT_EQ(Idle.InFlight, 0u);
  EXPECT_EQ(Idle.QueueDepth, 0u);
  EXPECT_EQ(Idle.Completed, 2u);
}

// Satellite: the non-blocking admission path. A full queue sheds
// instead of blocking — false return, Rejected counter, and the
// callback is never invoked (the caller owns the shed response).
TEST(ServiceTest, TrySubmitCallbackShedsAtFullQueue) {
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/1, /*CacheCapacity=*/0});

  std::atomic<bool> Parked{false};
  std::atomic<bool> Release{false};
  Request Blocker;
  Blocker.Source = "1 + 1";
  Svc.submit(Blocker, [&](Response) {
    Parked.store(true, std::memory_order_release);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!Parked.load(std::memory_order_acquire))
    std::this_thread::yield();

  // Fill the queue behind the parked worker, then shed.
  std::atomic<int> Invocations{0};
  Request Fill;
  Fill.Source = "2 + 2";
  EXPECT_TRUE(Svc.trySubmit(Fill, [&](Response) { ++Invocations; }));
  Request Shed;
  Shed.Source = "3 + 3";
  for (int I = 0; I < 3; ++I)
    EXPECT_FALSE(Svc.trySubmit(Shed, [&](Response) {
      ADD_FAILURE() << "shed callback must never run";
    }));
  EXPECT_EQ(Svc.stats().Rejected, 3u);

  Release.store(true, std::memory_order_release);
  Svc.shutdown(); // drains the admitted request
  EXPECT_EQ(Invocations.load(), 1);
  EXPECT_EQ(Svc.stats().Completed, 2u);
}

TEST(ServiceTest, TrySubmitCallbackAfterShutdownInvokesInline) {
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/4, /*CacheCapacity=*/0});
  Svc.shutdown();
  bool Invoked = false;
  std::thread::id CallbackThread;
  Request Req;
  Req.Source = "1 + 1";
  // Admission after shutdown is not a shed: trySubmit returns true and
  // resolves the callback inline with a Shutdown response.
  EXPECT_TRUE(Svc.trySubmit(Req, [&](Response R) {
    EXPECT_EQ(R.Status, RequestOutcome::Shutdown);
    CallbackThread = std::this_thread::get_id();
    Invoked = true;
  }));
  EXPECT_TRUE(Invoked);
  EXPECT_EQ(CallbackThread, std::this_thread::get_id());
  EXPECT_EQ(Svc.stats().ShutdownRejected, 1u);
  EXPECT_EQ(Svc.stats().Rejected, 0u);
}

// Satellite regression: trySubmit racing shutdown(). Every invocation
// that returns true must resolve its callback exactly once — either a
// worker completes it or the stopping path rejects it inline — and the
// counters must account for every admitted request. Before the
// event-loop front door this path did not exist; the race is exactly
// what a draining rmld exercises.
TEST(ServiceTest, CallbackSubmitRacingShutdownAlwaysCompletes) {
  constexpr int Producers = 4;
  constexpr int PerProducer = 24;
  Service Svc({/*Workers=*/2, /*QueueCapacity=*/4, /*CacheCapacity=*/4});

  std::atomic<int> Admitted{0};
  std::atomic<int> Sheds{0};
  std::atomic<int> Invocations{0};
  std::atomic<int> ShutdownInline{0};
  std::atomic<bool> Go{false};

  std::vector<std::thread> Threads;
  Threads.reserve(Producers);
  for (int T = 0; T < Producers; ++T)
    Threads.emplace_back([&, T] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (int I = 0; I < PerProducer; ++I) {
        Request Req;
        Req.Source = "1 + " + std::to_string(T * PerProducer + I);
        bool Ok = Svc.trySubmit(std::move(Req), [&](Response R) {
          ++Invocations;
          if (R.Status == RequestOutcome::Shutdown)
            ++ShutdownInline;
        });
        if (Ok)
          ++Admitted;
        else
          ++Sheds;
      }
    });

  Go.store(true, std::memory_order_release);
  // Shut down while the producers are mid-burst: some requests finish,
  // some reject inline, some shed — none may be dropped or doubled.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Svc.shutdown();
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Admitted + Sheds, Producers * PerProducer);
  // Exactly one callback per admitted request, none for sheds.
  EXPECT_EQ(Invocations.load(), Admitted.load());
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Rejected, static_cast<uint64_t>(Sheds.load()));
  EXPECT_EQ(S.ShutdownRejected,
            static_cast<uint64_t>(ShutdownInline.load()));
  EXPECT_EQ(S.Completed + S.ShutdownRejected,
            static_cast<uint64_t>(Admitted.load()));
  EXPECT_EQ(S.InFlight, 0u);
  EXPECT_EQ(S.QueueDepth, 0u);
}

// Satellite regression: a producer blocked in submit() on a full queue
// must be woken by shutdown() and handed a Shutdown rejection — before
// this fix it waited on NotFull forever (shutdown only notified the
// workers' condition variable).
TEST(ServiceTest, ShutdownWakesProducerBlockedOnFullQueue) {
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/1, /*CacheCapacity=*/0});

  // Park the only worker inside a callback so the queue cannot drain.
  std::atomic<bool> Parked{false};
  std::atomic<bool> Release{false};
  Request Blocker;
  Blocker.Source = "0";
  Blocker.Run = false;
  Svc.submit(Blocker, [&](Response) {
    Parked.store(true, std::memory_order_release);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!Parked.load(std::memory_order_acquire))
    std::this_thread::yield();

  // Fill the queue (capacity 1) behind the parked worker...
  Request Queued;
  Queued.Source = "1 + 1";
  std::future<Response> QueuedFuture = Svc.submit(Queued);

  // ...so this submission blocks in submit() on backpressure.
  std::atomic<bool> ProducerReturned{false};
  std::future<Response> BlockedFuture;
  std::thread Producer([&] {
    Request Req;
    Req.Source = "2 + 2";
    BlockedFuture = Svc.submit(Req);
    ProducerReturned.store(true, std::memory_order_release);
  });

  // shutdown() must wake the producer even while the worker stays
  // parked; run it on its own thread because it also joins the workers,
  // which needs the Release below.
  std::thread Stopper([&] { Svc.shutdown(); });
  while (!ProducerReturned.load(std::memory_order_acquire))
    std::this_thread::yield(); // liveness: hangs here without the fix
  Producer.join();
  Release.store(true, std::memory_order_release);
  Stopper.join();

  Response Rejected = BlockedFuture.get();
  EXPECT_EQ(Rejected.Status, RequestOutcome::Shutdown);
  EXPECT_FALSE(Rejected.CompileOk);
  // The request that made it into the queue before shutdown is drained
  // and served normally.
  Response Drained = QueuedFuture.get();
  EXPECT_EQ(Drained.Status, RequestOutcome::Ok) << Drained.Diagnostics;
  EXPECT_EQ(Drained.ResultText, "2");
}

//===----------------------------------------------------------------------===//
// Tentpole: per-phase budgets at the Executor layer.
//===----------------------------------------------------------------------===//

TEST(ServiceTest, ZeroInferBudgetCutsRequestsOff) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 4;
  Cfg.CacheCapacity = 4;
  Cfg.PhaseBudgets["infer"] = 0; // any executed infer phase is over
  Service Svc(Cfg);

  Request Req;
  Req.Source = "1 + 2";
  Response R = Svc.submit(Req).get();
  EXPECT_EQ(R.Status, RequestOutcome::Budget);
  EXPECT_FALSE(R.CompileOk);
  EXPECT_NE(R.Error.find("'infer'"), std::string::npos) << R.Error;
  EXPECT_NE(R.Diagnostics.find("exceeded its budget"), std::string::npos);
  // The profile list stops at the phase that blew the budget.
  ASSERT_FALSE(R.Profiles.empty());
  EXPECT_EQ(R.Profiles.back().Name, "infer");

  // Budget cut-offs are never cached: the identical source misses
  // again (and trips again) instead of replaying a cached rejection.
  Response R2 = Svc.submit(Req).get();
  EXPECT_EQ(R2.Status, RequestOutcome::Budget);
  EXPECT_FALSE(R2.CacheHit);

  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.BudgetExceeded, 2u);
  EXPECT_EQ(S.Completed, 2u);
  EXPECT_EQ(S.CompileErrors, 0u); // over-budget is not a compile error
  EXPECT_NE(S.json().find("\"budget_exceeded\":2"), std::string::npos);
}

TEST(ServiceTest, GenerousBudgetsLeaveRequestsAlone) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 4;
  Cfg.CacheCapacity = 4;
  // An hour per phase: present, therefore enforced, but never tripped.
  Cfg.PhaseBudgets["parse"] = 3'600'000'000'000ull;
  Cfg.PhaseBudgets["infer"] = 3'600'000'000'000ull;
  Service Svc(Cfg);

  Request Req;
  Req.Source = "20 + 22";
  Response R = Svc.submit(Req).get();
  EXPECT_EQ(R.Status, RequestOutcome::Ok) << R.Error;
  EXPECT_EQ(R.ResultText, "42");
  // Within-budget compiles are cached as usual.
  EXPECT_TRUE(Svc.submit(Req).get().CacheHit);
  EXPECT_EQ(Svc.stats().BudgetExceeded, 0u);
}

TEST(ServiceTest, StatsJsonShape) {
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/4, /*CacheCapacity=*/4});
  Request Req;
  Req.Source = "1 + 1";
  Svc.submit(Req).get();
  Svc.submit(Req).get();
  // The worker decrements the in-flight gauge only after the promise
  // resolves; join the workers so the snapshot is deterministic.
  Svc.shutdown();
  std::string J = Svc.stats().json();
  for (const char *Key :
       {"\"submitted\":2", "\"rejected\":0", "\"completed\":2",
        "\"cache_hits\":1", "\"cache_misses\":1", "\"workers\":1",
        "\"gc_count\":", "\"alloc_words\":", "\"queue_high_water\":",
        "\"queue_depth\":0", "\"in_flight\":0", "\"uptime_seconds\":",
        "\"utilization\":", "\"pool_hits\":", "\"pool_misses\":",
        "\"pool_releases\":", "\"pool_capacity\":1024", "\"pool_reuse\":",
        "\"pool_prewarmed\":0", "\"budget_exceeded\":0",
        "\"budget_auto_derived\":0", "\"shutdown_rejected\":0",
        "\"internal_errors\":0",
        "\"disk_hits\":0", "\"disk_misses\":0", "\"disk_write_errors\":0",
        "\"disk_load_rejects\":0", "\"disk_hydrations\":0",
        // The cost model saw two admissions of one source: the first
        // prediction fell back to the prior, the second hit the entry
        // the first completion learned.
        "\"cost_model\":{\"entries\":1,\"hits\":1,\"prior_uses\":1",
        "\"prior_per_byte\":",
        "\"sched\":\"fifo\"", "\"phases\":{", "\"flatten\":{\"sum_nanos\":",
        "\"parse\":{\"sum_nanos\":", "\"run\":{\"sum_nanos\":",
        "\"max_nanos\":", "\"count\":"})
    EXPECT_NE(J.find(Key), std::string::npos) << J;
  EXPECT_EQ(J.find('\n'), std::string::npos); // one line
  // The ratio fields render through jsonFixed: six fixed fraction
  // digits, '.' decimal separator, never a bare nan/inf value ("nan"
  // appears inside "sum_nanos", so match the value position).
  EXPECT_EQ(J.find(":nan"), std::string::npos);
  EXPECT_EQ(J.find(":inf"), std::string::npos);
  EXPECT_EQ(J.find(":-nan"), std::string::npos);
}

TEST(ServiceTest, ZeroUptimeStatsRenderFiniteJson) {
  // A default-constructed snapshot (zero uptime, zero workers) used to
  // push NaN/inf through operator<< on the ratio fields; jsonFixed
  // clamps them to 0 and keeps the document parseable.
  ServiceStats S;
  std::string J = S.json();
  EXPECT_NE(J.find("\"utilization\":0.000000"), std::string::npos) << J;
  EXPECT_NE(J.find("\"pool_reuse\":0.000000"), std::string::npos) << J;
  EXPECT_EQ(J.find(":nan"), std::string::npos);
  EXPECT_EQ(J.find(":inf"), std::string::npos);
  EXPECT_EQ(J.find(":-nan"), std::string::npos);
}

TEST(ServiceTest, ProfilesReportSkippedStaticPhasesOnCacheHit) {
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/4, /*CacheCapacity=*/4});
  Request Req;
  Req.Source = "1 + 2";
  Response Miss = Svc.submit(Req).get();
  Response Hit = Svc.submit(Req).get();
  ASSERT_FALSE(Miss.CacheHit);
  ASSERT_TRUE(Hit.CacheHit);

  std::vector<std::string> Expected = Compiler::staticPhaseNames();
  Expected.push_back(Compiler::RunPhaseName);
  ASSERT_EQ(Miss.Profiles.size(), Expected.size());
  ASSERT_EQ(Hit.Profiles.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I) {
    EXPECT_EQ(Miss.Profiles[I].Name, Expected[I]);
    EXPECT_EQ(Hit.Profiles[I].Name, Expected[I]);
  }
  // The miss paid every phase for real (captures is opt-in and the
  // request did not ask for it, so its slot alone is Skipped).
  for (const PhaseProfile &P : Miss.Profiles)
    EXPECT_EQ(P.Skipped, P.Name == "captures") << P.Name;
  // The hit reused the static work (Skipped, zero nanos) but paid a
  // fresh runtime phase.
  for (size_t I = 0; I + 1 < Hit.Profiles.size(); ++I) {
    EXPECT_TRUE(Hit.Profiles[I].Skipped) << Hit.Profiles[I].Name;
    EXPECT_EQ(Hit.Profiles[I].WallNanos, 0u) << Hit.Profiles[I].Name;
  }
  const PhaseProfile &HitRun = Hit.Profiles.back();
  EXPECT_FALSE(HitRun.Skipped);
  EXPECT_GT(HitRun.WallNanos, 0u);
  EXPECT_EQ(HitRun.AllocWords, Hit.Heap.AllocWords);

  // The service-level aggregates saw exactly one instance of each
  // executed static phase (the miss; the skipped opt-in captures phase
  // contributes nothing) and two runs.
  ServiceStats S = Svc.stats();
  ASSERT_EQ(S.Phases.size(), Expected.size());
  for (const ServiceStats::PhaseAggregate &A : S.Phases) {
    uint64_t Want = A.Name == Compiler::RunPhaseName ? 2u
                    : A.Name == "captures"           ? 0u
                                                     : 1u;
    EXPECT_EQ(A.Count, Want) << A.Name;
    EXPECT_GE(A.SumNanos, A.MaxNanos) << A.Name;
  }
}

TEST(ServiceTest, TrySubmitShedsLoadAtAFullQueue) {
  // One slow worker, a two-slot queue, a fast producer: the queue must
  // fill within a handful of accepted requests, and every trySubmit
  // after that is turned away instead of blocking.
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/2, /*CacheCapacity=*/0});
  std::vector<std::future<Response>> Accepted;
  uint64_t Rejections = 0;
  for (int I = 0; I < 2000 && Rejections == 0; ++I) {
    Request Req;
    Req.Source = "1 + " + std::to_string(I);
    if (auto F = Svc.trySubmit(std::move(Req)))
      Accepted.push_back(std::move(*F));
    else
      ++Rejections;
  }
  ASSERT_GT(Rejections, 0u) << "queue never filled";

  // Every accepted future still resolves correctly.
  for (auto &F : Accepted) {
    Response R = F.get();
    EXPECT_TRUE(R.CompileOk) << R.Diagnostics;
  }
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Rejected, Rejections);
  EXPECT_EQ(S.Submitted, Accepted.size());
  EXPECT_EQ(S.Completed, Accepted.size());
}

TEST(ServiceTest, TrySubmitAfterShutdownResolvesNotNullopt) {
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/4, /*CacheCapacity=*/4});
  Svc.shutdown();
  auto F = Svc.trySubmit(Request{});
  ASSERT_TRUE(F.has_value()) << "shutdown is terminal, not 'retry later'";
  Response R = F->get();
  EXPECT_FALSE(R.CompileOk);
  EXPECT_NE(R.Diagnostics.find("shut down"), std::string::npos);
  EXPECT_EQ(Svc.stats().Rejected, 0u); // not a load-shed
}

TEST(ServiceTest, PrewarmedPoolServesTheFirstWaveWithoutMisses) {
  // One worker serialises the runs, so each run's page demand (well
  // under the pool's capacity at the default GC threshold) is met from
  // the prewarmed stock, and teardown restocks it before the next run.
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 8;
  Cfg.CacheCapacity = 8;
  Cfg.PrewarmPool = true;
  Service Svc(Cfg);

  ServiceStats S0 = Svc.stats();
  EXPECT_EQ(S0.PoolPrewarmed, Cfg.PagePoolPages);
  EXPECT_EQ(S0.PoolFreePages, Cfg.PagePoolPages);

  Request Req;
  Req.Source = ComposeProgram;
  std::vector<std::future<Response>> Futures;
  for (int I = 0; I < 4; ++I)
    Futures.push_back(Svc.submit(Req));
  for (auto &F : Futures)
    ASSERT_EQ(F.get().Outcome, rt::RunOutcome::Ok);

  ServiceStats S = Svc.stats();
  EXPECT_GT(S.PoolAcquireHits, 0u);
  EXPECT_EQ(S.PoolAcquireMisses, 0u) << "first wave hit the allocator";
  EXPECT_EQ(S.poolReuseRatio(), 1.0);
}

TEST(ServiceTest, AggregatesGcCountsAcrossRequests) {
  Service Svc({/*Workers=*/4, /*QueueCapacity=*/16, /*CacheCapacity=*/8});
  Request Req;
  Req.Source = ComposeProgram;
  Req.EvalOpts.GcThresholdWords = 2048;
  rt::RunResult Solo = compileShared(ComposeProgram, {})->run(Req.EvalOpts);
  ASSERT_EQ(Solo.Outcome, rt::RunOutcome::Ok) << Solo.Error;
  ASSERT_GT(Solo.Heap.GcCount, 0u) << "program must trigger GC";

  std::vector<std::future<Response>> Futures;
  for (int I = 0; I < 6; ++I)
    Futures.push_back(Svc.submit(Req));
  for (auto &F : Futures)
    ASSERT_EQ(F.get().Outcome, rt::RunOutcome::Ok);

  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.TotalGcCount, 6 * Solo.Heap.GcCount);
  EXPECT_EQ(S.TotalAllocWords, 6 * Solo.Heap.AllocWords);
}

TEST(ServiceTest, RunsRecyclePagesThroughTheSharedPool) {
  // Sequential requests on one worker: the first run's heap teardown
  // feeds the pool, the second draws from it.
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 4;
  Cfg.CacheCapacity = 4;
  Service Svc(Cfg);
  ASSERT_NE(Svc.pagePool(), nullptr);

  Request Req;
  Req.Source = ComposeProgram;
  Req.EvalOpts.GcThresholdWords = 2048;
  Response First = Svc.submit(Req).get();
  ASSERT_EQ(First.Outcome, rt::RunOutcome::Ok) << First.Error;
  ServiceStats S0 = Svc.stats();
  EXPECT_GT(S0.PoolReleases, 0u) << "teardown recycled no pages";

  Response Second = Svc.submit(Req).get();
  ASSERT_EQ(Second.Outcome, rt::RunOutcome::Ok) << Second.Error;
  EXPECT_EQ(Second.ResultText, First.ResultText);
  EXPECT_EQ(Second.Heap.AllocWords, First.Heap.AllocWords);
  ServiceStats S1 = Svc.stats();
  EXPECT_GT(S1.PoolAcquireHits, S0.PoolAcquireHits);
  EXPECT_GT(S1.poolReuseRatio(), 0.0);
}

TEST(ServiceTest, PoolingCanBeDisabled) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 4;
  Cfg.CacheCapacity = 4;
  Cfg.PagePoolPages = 0;
  Service Svc(Cfg);
  EXPECT_EQ(Svc.pagePool(), nullptr);

  Request Req;
  Req.Source = ComposeProgram;
  Req.EvalOpts.GcThresholdWords = 2048;
  Response R = Svc.submit(Req).get();
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.PoolAcquireHits + S.PoolAcquireMisses + S.PoolReleases, 0u);
  EXPECT_EQ(S.PoolCapacity, 0u);
}

//===----------------------------------------------------------------------===//
// Satellite: service-hardening regressions.
//===----------------------------------------------------------------------===//

TEST(ServiceTest, ShutdownRejectionsAreCountedSeparately) {
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/4, /*CacheCapacity=*/4});
  Svc.shutdown();

  Request Req;
  Req.Source = "1 + 1";
  // All three submission paths reject after shutdown, and each bump is
  // visible as shutdown_rejected — distinct from load-shed Rejected.
  Response R1 = Svc.submit(Req).get();
  EXPECT_EQ(R1.Status, RequestOutcome::Shutdown);
  std::atomic<int> CallbackSeen{0};
  Svc.submit(Req, [&](Response R2) {
    EXPECT_EQ(R2.Status, RequestOutcome::Shutdown);
    ++CallbackSeen;
  });
  EXPECT_EQ(CallbackSeen.load(), 1);
  auto F = Svc.trySubmit(Req);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->get().Status, RequestOutcome::Shutdown);

  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.ShutdownRejected, 3u);
  EXPECT_EQ(S.Rejected, 0u) << "shutdown is not a load-shed";
  EXPECT_EQ(S.Submitted, 0u);
  EXPECT_NE(S.json().find("\"shutdown_rejected\":3"), std::string::npos);
}

/// A pause sink that throws from inside the evaluator's GC hook —
/// stand-in for any faulty user-supplied callback.
class ThrowingPauseSink final : public TraceSink {
public:
  void record(const PhaseProfile &) override {}
  void recordGcPause(const GcPauseRecord &) override {
    throw std::runtime_error("pause sink exploded");
  }
};

TEST(ServiceTest, WorkerSurvivesAThrowingRequestHook) {
  ServiceConfig Cfg;
  Cfg.Workers = 1; // one worker: if it dies, nothing below completes
  Cfg.QueueCapacity = 4;
  Cfg.CacheCapacity = 4;
  Cfg.PagePoolPages = 0; // keep the unwound heap away from the pool
  Service Svc(Cfg);

  ThrowingPauseSink Sink;
  Request Bad;
  Bad.Source = ComposeProgram;
  Bad.EvalOpts.GcThresholdWords = 2048; // guarantees a GC, hence a throw
  Bad.EvalOpts.PauseSink = &Sink;
  Response R = Svc.submit(Bad).get();
  EXPECT_EQ(R.Status, RequestOutcome::InternalError);
  EXPECT_FALSE(R.CompileOk);
  EXPECT_NE(R.Error.find("pause sink exploded"), std::string::npos)
      << R.Error;
  EXPECT_NE(R.Diagnostics.find("internal error"), std::string::npos);

  // The lone worker is still alive and serving.
  Request Good;
  Good.Source = "20 + 22";
  Response R2 = Svc.submit(Good).get();
  EXPECT_EQ(R2.Status, RequestOutcome::Ok) << R2.Error;
  EXPECT_EQ(R2.ResultText, "42");

  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.InternalErrors, 1u);
  EXPECT_EQ(S.CompileErrors, 0u) << "an escaped hook is not a compile error";
  EXPECT_EQ(S.Completed, 2u);
  EXPECT_NE(S.json().find("\"internal_errors\":1"), std::string::npos);
}

TEST(ServiceTest, BudgetResponseKeepsEarlierPhaseDiagnostics) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 4;
  Cfg.CacheCapacity = 4;
  Cfg.PhaseBudgets["infer"] = 0; // parse runs, infer trips
  Service Svc(Cfg);

  Request Req;
  // The duplicate top-level binding draws a shadowing warning from the
  // parse phase — diagnostics produced before the budget trips.
  Req.Source = "fun f x = x + 1\nfun f x = x + 2\n;f 1";
  Response R = Svc.submit(Req).get();
  EXPECT_EQ(R.Status, RequestOutcome::Budget);
  // The budget line leads, and the earlier warning survives behind it.
  EXPECT_NE(R.Diagnostics.find("exceeded its budget"), std::string::npos)
      << R.Diagnostics;
  EXPECT_NE(R.Diagnostics.find("shadows an earlier binding"),
            std::string::npos)
      << R.Diagnostics;
  EXPECT_LT(R.Diagnostics.find("exceeded its budget"),
            R.Diagnostics.find("shadows an earlier binding"));
}

TEST(ServiceTest, ShadowedBindingWarnsButStillRuns) {
  // Without a budget the same program compiles, warns, and runs; the
  // innermost (latest) binding wins at evaluation time.
  Service Svc({/*Workers=*/1, /*QueueCapacity=*/4, /*CacheCapacity=*/4});
  Request Req;
  Req.Source = "fun f x = x + 1\nfun f x = x + 2\n;f 1";
  Response R = Svc.submit(Req).get();
  EXPECT_EQ(R.Status, RequestOutcome::Ok) << R.Diagnostics;
  EXPECT_TRUE(R.CompileOk);
  EXPECT_EQ(R.ResultText, "3");
  EXPECT_NE(R.Diagnostics.find("shadows an earlier binding"),
            std::string::npos)
      << R.Diagnostics;
}

} // namespace
