//===- tests/eval_test.cpp - Evaluator option and robustness tests --------===//
//
// Runtime knobs: results are invariant under the tag-free representation,
// finite-region sizing, GC thresholds and page retention; resource limits
// behave; the runtime statistics respond the way the paper's columns do.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "bench/Programs.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class EvalTest : public ::testing::Test {
protected:
  std::unique_ptr<CompiledUnit> compile(std::string_view Src) {
    auto Unit = C.compile(Src);
    EXPECT_NE(Unit, nullptr) << C.diagnostics().str();
    return Unit;
  }

  Compiler C;
};

TEST_F(EvalTest, ResultInvariantUnderRepresentationKnobs) {
  const char *Src =
      "fun rv xs = let fun go acc ys = case ys of nil => acc "
      "| h :: t => go (h :: acc) t in go nil xs end\n"
      "val r = ref 5\n"
      "val l = rv [(1, \"a\"), (2, \"b\")]\n"
      ";(#2 (case l of nil => (0, \"\") | h :: _ => h), !r)";
  auto Unit = compile(Src);
  ASSERT_NE(Unit, nullptr);
  std::string Expected = "(\"b\", 5)";
  for (bool TagFree : {true, false}) {
    for (bool Finite : {true, false}) {
      for (uint64_t Threshold : {256u, 4096u, 1u << 20}) {
        rt::EvalOptions E;
        E.TagFreePairs = TagFree;
        E.UseFiniteRegions = Finite;
        E.GcThresholdWords = Threshold;
        rt::RunResult R = C.run(*Unit, E);
        ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok)
            << "tagfree=" << TagFree << " finite=" << Finite
            << " threshold=" << Threshold << ": " << R.Error;
        EXPECT_EQ(R.ResultText, Expected);
      }
    }
  }
}

TEST_F(EvalTest, TagFreeSavesAllocatedWords) {
  // Headerless pairs/cons cells: strictly fewer allocated words — the
  // Section 6 "dramatic savings" claim, qualitatively.
  auto Unit = compile(bench::findBenchmark("nrev")->Source);
  ASSERT_NE(Unit, nullptr);
  rt::EvalOptions On, Off;
  On.TagFreePairs = true;
  Off.TagFreePairs = false;
  rt::RunResult ROn = C.run(*Unit, On);
  rt::RunResult ROff = C.run(*Unit, Off);
  ASSERT_EQ(ROn.Outcome, rt::RunOutcome::Ok) << ROn.Error;
  ASSERT_EQ(ROff.Outcome, rt::RunOutcome::Ok) << ROff.Error;
  EXPECT_EQ(ROn.ResultText, ROff.ResultText);
  EXPECT_LT(ROn.Heap.AllocWords, ROff.Heap.AllocWords);
}

TEST_F(EvalTest, StepLimitStopsRunawayPrograms) {
  auto Unit = compile("fun loop n = loop (n + 1)\n;loop 0");
  ASSERT_NE(Unit, nullptr);
  rt::EvalOptions E;
  E.StepLimit = 10000;
  rt::RunResult R = C.run(*Unit, E);
  EXPECT_EQ(R.Outcome, rt::RunOutcome::RuntimeError);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST_F(EvalTest, LowThresholdMeansMoreCollections) {
  auto Unit = compile(bench::findBenchmark("nrev")->Source);
  ASSERT_NE(Unit, nullptr);
  rt::EvalOptions Low, High;
  Low.GcThresholdWords = 1024;
  High.GcThresholdWords = 1 << 22;
  rt::RunResult RLow = C.run(*Unit, Low);
  rt::RunResult RHigh = C.run(*Unit, High);
  ASSERT_EQ(RLow.Outcome, rt::RunOutcome::Ok) << RLow.Error;
  ASSERT_EQ(RHigh.Outcome, rt::RunOutcome::Ok) << RHigh.Error;
  EXPECT_GT(RLow.Heap.GcCount, RHigh.Heap.GcCount);
  EXPECT_EQ(RLow.ResultText, RHigh.ResultText);
}

TEST_F(EvalTest, RegionsAreCreatedAndReleased) {
  auto Unit = compile(bench::findBenchmark("msort")->Source);
  ASSERT_NE(Unit, nullptr);
  rt::RunResult R = C.run(*Unit);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_GT(R.Heap.RegionsCreated, 100u);
  // The stack discipline keeps live memory bounded far below the total.
  EXPECT_LT(R.Heap.PeakHeapWords, R.Heap.AllocWords);
}

TEST_F(EvalTest, FiniteRegionsAreExercised) {
  auto Unit = compile(bench::findBenchmark("msort")->Source);
  ASSERT_NE(Unit, nullptr);
  rt::EvalOptions E;
  E.UseFiniteRegions = true;
  rt::RunResult R = C.run(*Unit, E);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_GT(R.Heap.FiniteRegionsCreated, 0u);
  rt::EvalOptions E2;
  E2.UseFiniteRegions = false;
  rt::RunResult R2 = C.run(*Unit, E2);
  ASSERT_EQ(R2.Outcome, rt::RunOutcome::Ok) << R2.Error;
  EXPECT_EQ(R2.Heap.FiniteRegionsCreated, 0u);
  EXPECT_EQ(R.ResultText, R2.ResultText);
}

TEST_F(EvalTest, OutputIsCollected) {
  auto Unit = compile("fun p s = print s\n"
                      ";(p \"a\"; p (\"b\" ^ \"c\"); p (itos 42))");
  ASSERT_NE(Unit, nullptr);
  rt::RunResult R = C.run(*Unit);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.Output, "abc42");
}

TEST_F(EvalTest, DeepDataStructuresRender) {
  auto Unit = compile("fun build n = if n = 0 then nil else n :: build (n-1)\n"
                      ";build 30");
  ASSERT_NE(Unit, nullptr);
  rt::RunResult R = C.run(*Unit);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  // The renderer truncates long lists rather than flooding.
  EXPECT_NE(R.ResultText.find("..."), std::string::npos);
}

TEST_F(EvalTest, DeepRecursionFailsGracefully) {
  // No tail-call optimisation: very deep recursion must produce a
  // diagnostic, not a C++ stack overflow — in every build mode, because
  // the guard measures native stack consumption, not call counts.
  auto Unit = compile(
      "fun count n = if n = 0 then 0 else 1 + count (n - 1)\n;count 100000");
  ASSERT_NE(Unit, nullptr);
  rt::RunResult R = C.run(*Unit);
  EXPECT_EQ(R.Outcome, rt::RunOutcome::RuntimeError);
  EXPECT_NE(R.Error.find("stack"), std::string::npos);
  // Moderate depth is fine.
  auto Unit2 = compile(
      "fun count n = if n = 0 then 0 else 1 + count (n - 1)\n;count 1500");
  ASSERT_NE(Unit2, nullptr);
  rt::RunResult R2 = C.run(*Unit2);
  EXPECT_EQ(R2.Outcome, rt::RunOutcome::Ok) << R2.Error;
  EXPECT_EQ(R2.ResultText, "1500");
}

TEST_F(EvalTest, GcDisabledMeansNoCollections) {
  Compiler C2;
  CompileOptions Opts;
  Opts.Strat = Strategy::R;
  auto Unit = C2.compile(bench::findBenchmark("nrev")->Source, Opts);
  ASSERT_NE(Unit, nullptr) << C2.diagnostics().str();
  rt::RunResult R = C2.run(*Unit);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.Heap.GcCount, 0u);
}

} // namespace
