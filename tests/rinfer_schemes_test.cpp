//===- tests/rinfer_schemes_test.cpp - Inferred scheme shape tests --------===//
//
// Section 2's type schemes, reproduced by inference:
//
//  (1) the unsound scheme (rg-): gamma is quantified without an arrow
//      effect, and the result arrow cannot see instantiated regions;
//  (2) the sound scheme (rg, FreshSecondary): gamma carries a fresh
//      secondary arrow effect eps', and eps' occurs in the result
//      function's latent effect;
//  (3) the alternative scheme (rg, IdentifyWithFun): gamma's effect
//      variable is identified with a function arrow-effect variable.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

const char *ComposeSrc = "fun compose fg = fn x => #1 fg (#2 fg x)\n;()";

/// Finds compose's FunBind and returns its materialised scheme.
const RExpr *findFun(const RExpr *E, Symbol Name) {
  if (!E)
    return nullptr;
  if (E->K == RExpr::Kind::FunBind && E->Name == Name)
    return E;
  if (const RExpr *R = findFun(E->A, Name))
    return R;
  if (const RExpr *R = findFun(E->B, Name))
    return R;
  if (const RExpr *R = findFun(E->C, Name))
    return R;
  for (const RExpr *Item : E->Items)
    if (const RExpr *R = findFun(Item, Name))
      return R;
  return nullptr;
}

class SchemeTest : public ::testing::Test {
protected:
  const RScheme *composeScheme(Strategy S, SpuriousMode M) {
    CompileOptions Opts;
    Opts.Strat = S;
    Opts.Spurious = M;
    Unit = C.compile(ComposeSrc, Opts);
    if (!Unit) {
      ADD_FAILURE() << C.diagnostics().str();
      return nullptr;
    }
    const RExpr *Fun =
        findFun(Unit->program().Root, C.names().intern("compose"));
    if (!Fun) {
      ADD_FAILURE() << "compose not found";
      return nullptr;
    }
    return &Fun->Sigma;
  }

  /// The Delta entry with an arrow effect (the spurious gamma), if any.
  static const ArrowEff *spuriousEntry(const RScheme &S) {
    for (const auto &[Alpha, Nu] : S.Delta)
      if (Nu)
        return &*Nu;
    return nullptr;
  }

  Compiler C;
  std::unique_ptr<CompiledUnit> Unit;
};

TEST_F(SchemeTest, RgGivesSchemeTwo) {
  const RScheme *S =
      composeScheme(Strategy::Rg, SpuriousMode::FreshSecondary);
  ASSERT_NE(S, nullptr);
  // Three quantified type variables, exactly one spurious.
  EXPECT_EQ(S->Delta.size(), 3u);
  const ArrowEff *Gamma = spuriousEntry(*S);
  ASSERT_NE(Gamma, nullptr) << printScheme(*S);
  // The spurious arrow-effect variable is quantified...
  bool Quantified = false;
  for (EffectVar E : S->QEffects)
    Quantified |= E == Gamma->Handle;
  EXPECT_TRUE(Quantified) << printScheme(*S);
  // ...and occurs in the *result* function's latent effect, which is how
  // coverage reaches the eventual caller (scheme (2)).
  ASSERT_EQ(S->Body->K, Tau::Kind::Arrow);
  const Mu *Result = S->Body->B;
  ASSERT_EQ(Result->K, Mu::Kind::Boxed);
  ASSERT_EQ(Result->T->K, Tau::Kind::Arrow);
  EXPECT_TRUE(Result->T->Nu.Phi.contains(Gamma->Handle))
      << printScheme(*S);
}

TEST_F(SchemeTest, RgIdentifyGivesSchemeThree) {
  const RScheme *S =
      composeScheme(Strategy::Rg, SpuriousMode::IdentifyWithFun);
  ASSERT_NE(S, nullptr);
  const ArrowEff *Gamma = spuriousEntry(*S);
  ASSERT_NE(Gamma, nullptr);
  // Scheme (3): gamma's handle is one of the function arrow-effect
  // handles (no secondary effect variable).
  ASSERT_EQ(S->Body->K, Tau::Kind::Arrow);
  const Mu *Result = S->Body->B;
  bool Identified = Gamma->Handle == S->Body->Nu.Handle ||
                    (Result->K == Mu::Kind::Boxed &&
                     Result->T->K == Tau::Kind::Arrow &&
                     Gamma->Handle == Result->T->Nu.Handle);
  EXPECT_TRUE(Identified) << printScheme(*S);
}

TEST_F(SchemeTest, RgMinusGivesSchemeOne) {
  const RScheme *S =
      composeScheme(Strategy::RgMinus, SpuriousMode::FreshSecondary);
  ASSERT_NE(S, nullptr);
  // All quantified type variables are plain: the unsound scheme (1).
  EXPECT_EQ(S->Delta.size(), 3u);
  EXPECT_EQ(spuriousEntry(*S), nullptr) << printScheme(*S);
}

TEST_F(SchemeTest, TofteTalpinAlsoPlain) {
  const RScheme *S = composeScheme(Strategy::R, SpuriousMode::FreshSecondary);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(spuriousEntry(*S), nullptr);
}

TEST_F(SchemeTest, RegionAndEffectQuantifiersPresent) {
  const RScheme *S =
      composeScheme(Strategy::Rg, SpuriousMode::FreshSecondary);
  ASSERT_NE(S, nullptr);
  // The paper's scheme quantifies four regions (pair, two argument
  // closures, result closure) and the arrow-effect variables.
  EXPECT_GE(S->QRegions.size(), 4u) << printScheme(*S);
  EXPECT_GE(S->QEffects.size(), 4u) << printScheme(*S);
}

TEST_F(SchemeTest, ArgumentArrowEffectsAreEmptyInTheScheme) {
  // Scheme (2) gives the argument functions arrow effects eps2.{} and
  // eps1.{}: the scheme must not constrain its callers' functions.
  const RScheme *S =
      composeScheme(Strategy::Rg, SpuriousMode::FreshSecondary);
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Body->K, Tau::Kind::Arrow);
  const Mu *Arg = S->Body->A; // the pair of functions
  ASSERT_EQ(Arg->K, Mu::Kind::Boxed);
  ASSERT_EQ(Arg->T->K, Tau::Kind::Pair);
  const Mu *F1 = Arg->T->A, *F2 = Arg->T->B;
  ASSERT_EQ(F1->T->K, Tau::Kind::Arrow);
  ASSERT_EQ(F2->T->K, Tau::Kind::Arrow);
  EXPECT_TRUE(F1->T->Nu.Phi.isEmpty()) << printScheme(*S);
  EXPECT_TRUE(F2->T->Nu.Phi.isEmpty()) << printScheme(*S);
}

} // namespace
