//===- tests/flat_test.cpp - Flat runnable IR -----------------------------===//
//
// The flat, offset-based compiled form (src/flat) and its execution
// path: serialisation round trips are byte-identical, every manufactured
// corruption — truncation at each prefix, every single-bit flip, random
// garbage, out-of-range indices — fails closed to a null decode, the
// disk tier counts a damaged flat section as a load rejection, a warm
// service restart executes Run=true straight from disk with zero compile
// phases, and the Executor's hydration fallback (an ok disk hit with no
// runnable form) is counted instead of silent. Labelled `flat` in ctest
// and expected to be clean under -DRML_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "flat/Flat.h"

#include "core/Pipeline.h"
#include "service/DiskCache.h"
#include "service/Executor.h"
#include "service/Service.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

using namespace rml;
using namespace rml::service;

namespace fs = std::filesystem;

namespace {

/// A program that exercises every node kind worth serialising: region
/// polymorphism through compose, lists and pattern matching, strings,
/// refs with a write barrier, exceptions raised and handled, and print.
const char *RichProgram = R"(
exception Overflow of int
fun compose fg = fn x => #1 fg (#2 fg x)
fun len xs = case xs of nil => 0 | h :: t => 1 + len t
fun rev xs acc = case xs of nil => acc | h :: t => rev t (h :: acc)
fun guard n = if n > 20 then raise Overflow n else n
;let val cell = ref 7
     val words = "oh" :: "no" :: "ok" :: nil
     val h = compose (fn x => x + 1, fn x => x * 2)
     val r = (print ("len=" ^ itos (len (rev words nil)));
              cell := h 9; !cell + len words)
 in (guard r handle Overflow n => n - 1) + size "abc" end
)";

/// Small and fast: the subject of the exhaustive bit-flip sweep.
const char *SmallProgram = "fun id x = x\n;id 1 + id 2";

struct ScratchDir {
  fs::path Path;
  explicit ScratchDir(const std::string &Name) {
    Path = fs::path(::testing::TempDir()) / ("rml_flat_" + Name);
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

std::string readFileBytes(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const fs::path &P, const std::string &Bytes) {
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// Compiles \p Src under \p Strat and returns the unit's encoded flat
/// bytes (asserting the compile worked).
std::string flatBytesOf(const char *Src, Strategy Strat = Strategy::Rg) {
  Compiler C;
  CompileOptions Opts;
  Opts.Strat = Strat;
  auto Unit = C.compile(Src, Opts);
  EXPECT_NE(Unit, nullptr) << C.diagnostics().str();
  if (!Unit)
    return std::string();
  EXPECT_NE(Unit->Flat, nullptr);
  return flat::encodeFlat(*Unit->Flat);
}

//===----------------------------------------------------------------------===//
// Round trips and determinism
//===----------------------------------------------------------------------===//

TEST(FlatEncoding, RoundTripIsByteIdentical) {
  for (Strategy Strat : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
    SCOPED_TRACE(strategyName(Strat));
    std::string Bytes = flatBytesOf(RichProgram, Strat);
    ASSERT_FALSE(Bytes.empty());
    std::shared_ptr<const flat::FlatUnit> Decoded = flat::decodeFlat(Bytes);
    ASSERT_NE(Decoded, nullptr);
    // decode . encode is the identity on bytes — the invariant that
    // makes the persisted form trustworthy across processes.
    EXPECT_EQ(flat::encodeFlat(*Decoded), Bytes);
    // And once more through the cycle, for fixpoint paranoia.
    std::shared_ptr<const flat::FlatUnit> Again =
        flat::decodeFlat(flat::encodeFlat(*Decoded));
    ASSERT_NE(Again, nullptr);
    EXPECT_EQ(flat::encodeFlat(*Again), Bytes);
  }
}

TEST(FlatEncoding, IndependentCompilersEncodeIdentically) {
  // Byte-determinism across Compiler instances is what lets the disk
  // tier treat "file already exists" as "already this entry".
  EXPECT_EQ(flatBytesOf(RichProgram), flatBytesOf(RichProgram));
  EXPECT_EQ(flatBytesOf(SmallProgram, Strategy::R),
            flatBytesOf(SmallProgram, Strategy::R));
}

TEST(FlatEncoding, StrategiesEncodeDifferently) {
  // The strategy is part of the unit (it gates GC at run time), so the
  // three strategies must not alias one another's bytes.
  EXPECT_NE(flatBytesOf(RichProgram, Strategy::Rg),
            flatBytesOf(RichProgram, Strategy::RgMinus));
}

TEST(FlatEncoding, DecodedUnitRunsLikeTheTree) {
  for (Strategy Strat : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
    SCOPED_TRACE(strategyName(Strat));
    Compiler C;
    CompileOptions Opts;
    Opts.Strat = Strat;
    auto Unit = C.compile(RichProgram, Opts);
    ASSERT_NE(Unit, nullptr) << C.diagnostics().str();

    rt::EvalOptions E;
    E.GcThresholdWords = 512;
    rt::RunResult Tree = C.run(*Unit, E);
    ASSERT_EQ(Tree.Outcome, rt::RunOutcome::Ok) << Tree.Error;

    std::shared_ptr<const flat::FlatUnit> Decoded =
        flat::decodeFlat(flat::encodeFlat(*Unit->Flat));
    ASSERT_NE(Decoded, nullptr);
    rt::RunResult Flat = Compiler::runFlat(*Decoded, E);
    EXPECT_EQ(Flat.Outcome, Tree.Outcome);
    EXPECT_EQ(Flat.Output, Tree.Output);
    EXPECT_EQ(Flat.ResultText, Tree.ResultText);
    EXPECT_EQ(Flat.Steps, Tree.Steps);
    EXPECT_EQ(Flat.Heap.AllocWords, Tree.Heap.AllocWords);
    EXPECT_EQ(Flat.Heap.GcCount, Tree.Heap.GcCount);
    EXPECT_EQ(Flat.Heap.CopiedWords, Tree.Heap.CopiedWords);
    EXPECT_EQ(Flat.Heap.RegionsCreated, Tree.Heap.RegionsCreated);
    // runFlat reports the same "run" phase profile shape as run().
    EXPECT_EQ(Flat.Phase.Name, Compiler::RunPhaseName);
    EXPECT_EQ(Flat.Phase.GcCount, Flat.Heap.GcCount);
  }
}

TEST(FlatEncoding, UncaughtExceptionAgreesBetweenTreeAndFlat) {
  const char *Raises =
      "exception Boom of int\n;if 1 < 2 then raise Boom 9 else 0";
  Compiler C;
  auto Unit = C.compile(Raises);
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();
  rt::RunResult Tree = C.run(*Unit);
  ASSERT_EQ(Tree.Outcome, rt::RunOutcome::UncaughtException);
  std::shared_ptr<const flat::FlatUnit> Decoded =
      flat::decodeFlat(flat::encodeFlat(*Unit->Flat));
  ASSERT_NE(Decoded, nullptr);
  rt::RunResult Flat = Compiler::runFlat(*Decoded);
  EXPECT_EQ(Flat.Outcome, Tree.Outcome);
  EXPECT_EQ(Flat.Error, Tree.Error) << "exception names survive the trip";
}

//===----------------------------------------------------------------------===//
// Corruption: every damage fails closed to a null decode
//===----------------------------------------------------------------------===//

TEST(FlatCorruption, EveryTruncationDecodesToNull) {
  std::string Bytes = flatBytesOf(RichProgram);
  ASSERT_FALSE(Bytes.empty());
  for (size_t Len = 0; Len < Bytes.size(); ++Len)
    ASSERT_EQ(flat::decodeFlat(std::string_view(Bytes.data(), Len)), nullptr)
        << "prefix of " << Len << " bytes decoded";
}

TEST(FlatCorruption, EverySingleBitFlipDecodesToNull) {
  // The checksum covers the whole body and the header is matched
  // exactly, so no single-bit flip anywhere may survive. Exhaustive
  // over a small program; the sampled sweep below covers a large one.
  std::string Bytes = flatBytesOf(SmallProgram);
  ASSERT_FALSE(Bytes.empty());
  for (size_t I = 0; I < Bytes.size(); ++I)
    for (int B = 0; B < 8; ++B) {
      std::string Mut = Bytes;
      Mut[I] = static_cast<char>(Mut[I] ^ (1 << B));
      ASSERT_EQ(flat::decodeFlat(Mut), nullptr)
          << "bit " << B << " of byte " << I << " flipped and decoded";
    }
}

TEST(FlatCorruption, SampledBitFlipsOnALargeUnitDecodeToNull) {
  std::string Bytes = flatBytesOf(RichProgram);
  ASSERT_FALSE(Bytes.empty());
  std::mt19937 Rng(0xF1A7);
  for (int I = 0; I < 2000; ++I) {
    std::string Mut = Bytes;
    size_t Byte = Rng() % Mut.size();
    Mut[Byte] = static_cast<char>(Mut[Byte] ^ (1 << (Rng() % 8)));
    ASSERT_EQ(flat::decodeFlat(Mut), nullptr)
        << "flip in byte " << Byte << " decoded";
  }
}

TEST(FlatCorruption, RandomGarbageNeverCrashes) {
  std::mt19937 Rng(0xBADF00D);
  std::string Bytes = flatBytesOf(SmallProgram);
  for (int I = 0; I < 500; ++I) {
    size_t Len = Rng() % 512;
    std::string Garbage(Len, '\0');
    for (char &C : Garbage)
      C = static_cast<char>(Rng());
    // Half the probes wear the real magic so they get past the header
    // and into the structural validation.
    if (Len >= 8 && (Rng() & 1))
      Garbage.replace(0, 8, Bytes.substr(0, 8));
    EXPECT_EQ(flat::decodeFlat(Garbage), nullptr);
  }
  // Shuffled tails of a genuine encoding: valid header bytes, scrambled
  // body — the checksum must throw all of them out.
  for (int I = 0; I < 200; ++I) {
    std::string Mut = Bytes;
    size_t From = 20 + Rng() % (Mut.size() - 20);
    std::shuffle(Mut.begin() + From, Mut.end(), Rng);
    if (Mut == Bytes)
      continue;
    EXPECT_EQ(flat::decodeFlat(Mut), nullptr);
  }
}

TEST(FlatCorruption, StructurallyInvalidUnitsRejectAtDecode) {
  // encodeFlat does not validate, so a hand-corrupted FlatUnit probes
  // the decoder's index validation with a correct checksum — the layer
  // a checksum alone cannot defend.
  Compiler C;
  auto Unit = C.compile(RichProgram);
  ASSERT_NE(Unit, nullptr);
  const flat::FlatUnit &Good = *Unit->Flat;

  {
    flat::FlatUnit Bad = Good; // root out of the node table
    Bad.Root = static_cast<uint32_t>(Bad.Nodes.size());
    EXPECT_EQ(flat::decodeFlat(flat::encodeFlat(Bad)), nullptr);
  }
  {
    flat::FlatUnit Bad = Good; // root type out of the mu table
    Bad.RootMu = static_cast<uint32_t>(Bad.Mus.size()) + 5;
    EXPECT_EQ(flat::decodeFlat(flat::encodeFlat(Bad)), nullptr);
  }
  {
    flat::FlatUnit Bad = Good; // strategy beyond the enum
    Bad.Strat = 9;
    EXPECT_EQ(flat::decodeFlat(flat::encodeFlat(Bad)), nullptr);
  }
  {
    flat::FlatUnit Bad = Good; // node kind beyond the enum
    Bad.Nodes[Bad.Root].Kind = 0xFF;
    EXPECT_EQ(flat::decodeFlat(flat::encodeFlat(Bad)), nullptr);
  }
  {
    flat::FlatUnit Bad = Good; // child index out of the node table
    Bad.Nodes[Bad.Root].A = static_cast<uint32_t>(Bad.Nodes.size()) + 7;
    EXPECT_EQ(flat::decodeFlat(flat::encodeFlat(Bad)), nullptr);
  }
  {
    flat::FlatUnit Bad = Good; // aux span overruns its section
    ASSERT_FALSE(Bad.Fns.empty());
    Bad.Fns[0].CapturesCount = static_cast<uint32_t>(Bad.Aux.size()) + 1;
    EXPECT_EQ(flat::decodeFlat(flat::encodeFlat(Bad)), nullptr);
  }
  {
    flat::FlatUnit Bad = Good; // string id out of the string table
    ASSERT_FALSE(Bad.ExnNames.empty());
    Bad.ExnNames[0] = static_cast<uint32_t>(Bad.StringSpans.size());
    EXPECT_EQ(flat::decodeFlat(flat::encodeFlat(Bad)), nullptr);
  }
  // The uncorrupted original still decodes — the probes above failed
  // for the planted reason, not some latent one.
  EXPECT_NE(flat::decodeFlat(flat::encodeFlat(Good)), nullptr);
}

//===----------------------------------------------------------------------===//
// The disk tier: damaged flat sections are counted misses
//===----------------------------------------------------------------------===//

CachedCompileRef storeOne(DiskCache &Disk, const CacheKey &K,
                          const char *Src) {
  CachedCompileRef Fresh = compileShared(Src, CompileOptions{});
  EXPECT_TRUE(Fresh->ok());
  Disk.store(K, *Fresh);
  return Fresh;
}

TEST(FlatDisk, CorruptFlatSectionIsACountedLoadReject) {
  ScratchDir Dir("corrupt_section");
  DiskCache Disk(Dir.str());
  CacheKey K = CacheKey::of(RichProgram, CompileOptions{});
  storeOne(Disk, K, RichProgram);

  // The flat payload is the final section of the entry, so the last
  // byte is inside it: flipping it keeps the outer entry structurally
  // whole and leaves the nested flat checksum to catch the damage.
  fs::path File = Dir.Path / DiskCache::entryFileName(K.Hash);
  std::string Bytes = readFileBytes(File);
  ASSERT_FALSE(Bytes.empty());
  Bytes.back() = static_cast<char>(Bytes.back() ^ 0x10);
  writeFileBytes(File, Bytes);

  EXPECT_EQ(Disk.load(K), nullptr) << "a damaged runnable form is no hit";
  DiskCache::Counters C = Disk.counters();
  EXPECT_EQ(C.LoadRejects, 1u);
  EXPECT_EQ(C.Hits, 0u);
}

TEST(FlatDisk, TruncatedEntryIsACountedLoadReject) {
  ScratchDir Dir("truncated");
  DiskCache Disk(Dir.str());
  CacheKey K = CacheKey::of(RichProgram, CompileOptions{});
  storeOne(Disk, K, RichProgram);

  fs::path File = Dir.Path / DiskCache::entryFileName(K.Hash);
  std::string Bytes = readFileBytes(File);
  ASSERT_GT(Bytes.size(), 40u);
  writeFileBytes(File, Bytes.substr(0, Bytes.size() - 33));

  EXPECT_EQ(Disk.load(K), nullptr);
  EXPECT_EQ(Disk.counters().LoadRejects, 1u);
}

TEST(FlatDisk, ForgedPresenceByteIsACountedLoadReject) {
  ScratchDir Dir("presence");
  DiskCache Disk(Dir.str());
  CacheKey K = CacheKey::of(SmallProgram, CompileOptions{});
  CachedCompileRef Fresh = storeOne(Disk, K, SmallProgram);
  ASSERT_NE(Fresh->Flat, nullptr);

  // Rewrite the presence byte (which sits right before the nested flat
  // string) to an undefined value; the loader accepts exactly 0 or 1.
  fs::path File = Dir.Path / DiskCache::entryFileName(K.Hash);
  std::string Bytes = readFileBytes(File);
  std::string FlatBytes = flat::encodeFlat(*Fresh->Flat);
  size_t PresencePos = Bytes.size() - FlatBytes.size() - 8 - 1;
  ASSERT_EQ(static_cast<unsigned char>(Bytes[PresencePos]), 1u);
  Bytes[PresencePos] = 2;
  writeFileBytes(File, Bytes);

  EXPECT_EQ(Disk.load(K), nullptr);
  EXPECT_EQ(Disk.counters().LoadRejects, 1u);
}

//===----------------------------------------------------------------------===//
// Warm restart: Run=true served from disk with zero compile phases
//===----------------------------------------------------------------------===//

ServiceConfig flatServiceConfig(std::string Dir) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 8;
  Cfg.CacheCapacity = 8;
  Cfg.CacheDir = std::move(Dir);
  return Cfg;
}

TEST(FlatService, WarmRestartRunsFromDiskWithZeroCompilePhases) {
  ScratchDir Dir("warm_restart");

  Request Run;
  Run.Source = RichProgram;
  Run.EvalOpts.GcThresholdWords = 1024;

  std::string ColdResult, ColdOutput;
  {
    Service Svc(flatServiceConfig(Dir.str()));
    Response Cold = Svc.submit(Run).get();
    ASSERT_EQ(Cold.Status, RequestOutcome::Ok) << Cold.Error;
    EXPECT_FALSE(Cold.CacheHit);
    ColdResult = Cold.ResultText;
    ColdOutput = Cold.Output;
  }

  // The restarted process has an empty memory tier; its first Run=true
  // must complete as a pure disk hit — no compile phases executed.
  Service Svc(flatServiceConfig(Dir.str()));
  Response Warm = Svc.submit(Run).get();
  ASSERT_EQ(Warm.Status, RequestOutcome::Ok) << Warm.Error;
  EXPECT_TRUE(Warm.CacheHit) << "the disk entry is runnable as loaded";
  EXPECT_EQ(Warm.ResultText, ColdResult);
  EXPECT_EQ(Warm.Output, ColdOutput);
  ASSERT_FALSE(Warm.Profiles.empty());
  for (const PhaseProfile &P : Warm.Profiles) {
    if (P.Name == Compiler::RunPhaseName)
      continue;
    EXPECT_TRUE(P.Skipped) << "phase '" << P.Name << "' ran on a disk hit";
    EXPECT_EQ(P.WallNanos, 0u) << P.Name;
  }
  EXPECT_EQ(Warm.Profiles.back().Name, Compiler::RunPhaseName)
      << "the run itself is fresh";

  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.DiskHits, 1u);
  EXPECT_EQ(S.DiskHydrations, 0u) << "no silent recompile";
  EXPECT_EQ(S.DiskLoadRejects, 0u);
  EXPECT_EQ(S.CacheMisses, 1u) << "one memory miss, promoted from disk";
}

TEST(FlatService, WarmRestartRunsUnderEveryStrategy) {
  ScratchDir Dir("warm_strategies");
  for (Strategy Strat : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
    SCOPED_TRACE(strategyName(Strat));
    Request Run;
    Run.Source = RichProgram;
    Run.Opts.Strat = Strat;

    std::string ColdResult;
    {
      Service Svc(flatServiceConfig(Dir.str()));
      Response Cold = Svc.submit(Run).get();
      ASSERT_EQ(Cold.Status, RequestOutcome::Ok) << Cold.Error;
      ColdResult = Cold.ResultText;
    }
    Service Svc(flatServiceConfig(Dir.str()));
    Response Warm = Svc.submit(Run).get();
    ASSERT_EQ(Warm.Status, RequestOutcome::Ok) << Warm.Error;
    EXPECT_TRUE(Warm.CacheHit);
    EXPECT_EQ(Warm.ResultText, ColdResult);
  }
}

//===----------------------------------------------------------------------===//
// The hydration fallback is counted, not silent
//===----------------------------------------------------------------------===//

TEST(FlatExecutor, UnrunnableDiskHitCountsAHydration) {
  ServiceConfig Cfg;
  Cfg.CacheCapacity = 8;
  CompileCache Cache(Cfg.CacheCapacity);
  Executor Exec(Cfg, Cache, nullptr);

  // A synthetic ok disk entry with no runnable form — the shape a
  // future-format (or hand-damaged) entry would load as if the flat
  // section were optional. runnable() is false.
  Request Req;
  Req.Source = SmallProgram;
  CacheKey K = CacheKey::of(Req.Source, Req.Opts);
  auto Stale = std::make_shared<CachedCompile>();
  Stale->Ok = true;
  Stale->FromDisk = true;
  Stale->Printed = "stale";
  Cache.insert(K, Stale);
  ASSERT_FALSE(Stale->runnable());

  // Static traffic is served from the entry without hydrating...
  Request Static = Req;
  Static.Run = false;
  Response StaticResp = Exec.process(Static);
  EXPECT_TRUE(StaticResp.CacheHit);
  EXPECT_EQ(Exec.diskHydrations(), 0u);

  // ...but Run=true must recompile once, and the fallback is counted.
  Response First = Exec.process(Req);
  EXPECT_EQ(First.Status, RequestOutcome::Ok) << First.Error;
  EXPECT_FALSE(First.CacheHit) << "hydration is a real compile";
  EXPECT_EQ(First.ResultText, "3");
  EXPECT_EQ(Exec.diskHydrations(), 1u);

  // The recompiled entry replaced the stale one: no second hydration.
  Response Second = Exec.process(Req);
  EXPECT_EQ(Second.Status, RequestOutcome::Ok);
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_EQ(Second.ResultText, "3");
  EXPECT_EQ(Exec.diskHydrations(), 1u);
}

} // namespace
