//===- tests/heap_test.cpp - Region heap unit tests -----------------------===//

#include "rt/Region.h"

#include <gtest/gtest.h>

using namespace rml;
using namespace rml::rt;

namespace {

TEST(Heap, GlobalRegionExists) {
  RegionHeap H;
  ASSERT_EQ(H.numRegions(), 1u);
  EXPECT_TRUE(H.region(0).Live);
  EXPECT_EQ(H.region(0).StaticId, 0u);
}

TEST(Heap, CreateAllocRelease) {
  RegionHeap H;
  uint32_t R = H.create(5, RegionKind::Mixed, 0);
  uint64_t *P = H.alloc(R, 3);
  ASSERT_NE(P, nullptr);
  P[0] = 1;
  P[1] = 2;
  P[2] = 3;
  EXPECT_EQ(H.Stats.AllocWords, 3u);
  EXPECT_TRUE(H.region(R).Live);
  H.release(R);
  EXPECT_FALSE(H.region(R).Live);
}

TEST(Heap, OwnerOfResolvesLivePointers) {
  RegionHeap H;
  uint32_t R1 = H.create(1, RegionKind::Mixed, 0);
  uint32_t R2 = H.create(2, RegionKind::Mixed, 0);
  uint64_t *P1 = H.alloc(R1, 2);
  uint64_t *P2 = H.alloc(R2, 2);
  EXPECT_EQ(H.ownerOf(P1), std::optional<uint32_t>(R1));
  EXPECT_EQ(H.ownerOf(P2), std::optional<uint32_t>(R2));
  EXPECT_EQ(H.ownerOf(P1 + 1), std::optional<uint32_t>(R1));
  uint64_t Local = 0;
  EXPECT_EQ(H.ownerOf(&Local), std::nullopt);
}

TEST(Heap, ReleasedPointersBecomeUnknown) {
  RegionHeap H;
  uint32_t R = H.create(7, RegionKind::Mixed, 0);
  uint64_t *P = H.alloc(R, 2);
  H.release(R);
  EXPECT_EQ(H.ownerOf(P), std::nullopt);
}

TEST(Heap, GraveyardIdentifiesDanglingTargets) {
  RegionHeap H;
  H.RetainReleasedPages = true;
  uint32_t R = H.create(9, RegionKind::Mixed, 0);
  uint64_t *P = H.alloc(R, 2);
  H.release(R);
  EXPECT_EQ(H.ownerOf(P), std::nullopt);
  // The graveyard remembers the *static* region id for diagnostics.
  EXPECT_EQ(H.graveyardOwnerOf(P), std::optional<uint32_t>(9));
}

TEST(Heap, MultiplePagesGrow) {
  RegionHeap H;
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  for (int I = 0; I < 1000; ++I)
    H.alloc(R, 3); // 3000 words > one 256-word page
  EXPECT_GT(H.region(R).Pages.size(), 1u);
  EXPECT_EQ(H.Stats.AllocWords, 3000u);
}

TEST(Heap, LargeObjectsGetOversizePages) {
  RegionHeap H;
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  uint64_t *P = H.alloc(R, 5000);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.ownerOf(P + 4999), std::optional<uint32_t>(R));
}

TEST(Heap, PoolReusesStandardPages) {
  RegionHeap H;
  uint32_t R1 = H.create(1, RegionKind::Mixed, 0);
  H.alloc(R1, 8);
  uint64_t Pages = H.Stats.PagesAllocated;
  H.release(R1);
  uint32_t R2 = H.create(2, RegionKind::Mixed, 0);
  H.alloc(R2, 8);
  EXPECT_EQ(H.Stats.PagesAllocated, Pages); // reused from the pool
}

TEST(Heap, FiniteRegionsUseExactBlocks) {
  RegionHeap H;
  uint64_t Before = H.Stats.CurrentHeapWords;
  uint32_t R = H.create(3, RegionKind::Pair, /*FiniteWords=*/2);
  EXPECT_TRUE(H.region(R).Finite);
  EXPECT_EQ(H.Stats.CurrentHeapWords - Before, 2u);
  EXPECT_EQ(H.Stats.FiniteRegionsCreated, 1u);
  uint64_t *P = H.alloc(R, 2);
  ASSERT_NE(P, nullptr);
  H.release(R);
}

TEST(Heap, PeakTracksHighWaterMark) {
  RegionHeap H;
  uint32_t R1 = H.create(1, RegionKind::Mixed, 0);
  H.alloc(R1, 100);
  uint64_t Peak1 = H.Stats.PeakHeapWords;
  H.release(R1);
  EXPECT_EQ(H.Stats.PeakHeapWords, Peak1);
  EXPECT_LT(H.Stats.CurrentHeapWords, Peak1);
}

TEST(Heap, RegionKindsStored) {
  RegionHeap H;
  uint32_t R = H.create(4, RegionKind::Cons, 0);
  EXPECT_EQ(H.region(R).Kind, RegionKind::Cons);
}

TEST(Heap, AllocSinceGcAccumulates) {
  RegionHeap H;
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  H.alloc(R, 10);
  H.alloc(R, 5);
  EXPECT_EQ(H.allocSinceGc(), 15u);
  H.resetAllocSinceGc();
  EXPECT_EQ(H.allocSinceGc(), 0u);
}

} // namespace
