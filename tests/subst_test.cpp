//===- tests/subst_test.cpp - Substitution unit tests ---------------------===//
//
// Exercises the paper's substitution definitions (Section 3.3): the
// action on effects and arrow effects, coverage, and the instance-of
// relation (Section 3.4) — including the coverage failure that encodes
// the paper's central counterexample.
//
//===----------------------------------------------------------------------===//

#include "region/Subst.h"

#include "region/Containment.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class SubstTest : public ::testing::Test {
protected:
  RegionVar r(uint32_t I) { return RegionVar(I); }
  EffectVar e(uint32_t I) { return EffectVar(I); }
  TyVarId a(uint32_t I) { return TyVarId(I); }

  RTypeArena A;
};

TEST_F(SubstTest, IdentityOutsideDomain) {
  Subst S;
  S.Sr.emplace(r(1), r(9));
  EXPECT_EQ(S.apply(r(1)), r(9));
  EXPECT_EQ(S.apply(r(2)), r(2));
  EXPECT_EQ(S.applyEffectVar(e(1)).Handle, e(1));
  EXPECT_TRUE(S.applyEffectVar(e(1)).Phi.isEmpty());
}

TEST_F(SubstTest, EffectSubstitutionFollowsThePaper) {
  // S(phi) = {Sr(rho) | rho in phi} u {eta | eps in phi, eta in
  // frev(Se(eps))}.
  Subst S;
  S.Sr.emplace(r(1), r(9));
  S.Se.emplace(e(1), ArrowEff(e(7), Effect{AtomicEffect(r(5))}));
  Effect Phi{AtomicEffect(r(1)), AtomicEffect(r(2)), AtomicEffect(e(1))};
  Effect Out = S.apply(Phi);
  // r1 -> r9; r2 stays; e1 -> frev(e7.{r5}) = {e7, r5}.
  EXPECT_EQ(Out.size(), 4u);
  EXPECT_TRUE(Out.contains(r(9)));
  EXPECT_TRUE(Out.contains(r(2)));
  EXPECT_TRUE(Out.contains(e(7)));
  EXPECT_TRUE(Out.contains(r(5)));
  EXPECT_FALSE(Out.contains(r(1)));
  EXPECT_FALSE(Out.contains(e(1)));
}

TEST_F(SubstTest, ArrowEffectSubstitutionGrows) {
  // S(eps.phi) = eps'.(phi' u S(phi)): applying a substitution can only
  // grow arrow effects.
  Subst S;
  S.Se.emplace(e(1), ArrowEff(e(2), Effect{AtomicEffect(r(8))}));
  ArrowEff Nu(e(1), Effect{AtomicEffect(r(1))});
  ArrowEff Out = S.apply(Nu);
  EXPECT_EQ(Out.Handle, e(2));
  EXPECT_TRUE(Out.Phi.contains(r(8))); // phi' of the mapped handle
  EXPECT_TRUE(Out.Phi.contains(r(1))); // S of the original phi
}

TEST_F(SubstTest, SubstitutionEffectMonotonicity) {
  // Proposition 3: phi subset phi' implies S(phi) subset S(phi').
  Subst S;
  S.Sr.emplace(r(1), r(9));
  S.Se.emplace(e(1), ArrowEff(e(7), Effect{AtomicEffect(r(5))}));
  Effect Small{AtomicEffect(r(1))};
  Effect Big{AtomicEffect(r(1)), AtomicEffect(e(1)), AtomicEffect(r(3))};
  EXPECT_TRUE(Small.subsetOf(Big));
  EXPECT_TRUE(S.apply(Small).subsetOf(S.apply(Big)));
}

TEST_F(SubstTest, ArrowEffectSubstitutionInterchange) {
  // frev(S(eps.phi)) = S({eps} u phi) — the interchange property the
  // paper states after Proposition 3.
  Subst S;
  S.Sr.emplace(r(1), r(9));
  S.Se.emplace(e(1), ArrowEff(e(7), Effect{AtomicEffect(r(5))}));
  S.Se.emplace(e(2), ArrowEff(e(8), Effect{}));
  ArrowEff Nu(e(2), Effect{AtomicEffect(r(1)), AtomicEffect(e(1))});
  Effect Lhs = S.apply(Nu).frev();
  Effect Arg = Nu.Phi;
  Arg.insert(AtomicEffect(Nu.Handle));
  Effect Rhs = S.apply(Arg);
  EXPECT_EQ(Lhs, Rhs);
}

TEST_F(SubstTest, TypeSubstitution) {
  Subst S;
  S.St.emplace(a(0), A.boxed(A.stringTy(), r(5)));
  const Mu *M = A.boxed(A.pairTy(A.tyVar(a(0)), A.tyVar(a(1))), r(1));
  const Mu *Out = S.apply(M, A);
  ASSERT_EQ(Out->K, Mu::Kind::Boxed);
  EXPECT_EQ(Out->T->A->K, Mu::Kind::Boxed); // 'a replaced by string
  EXPECT_EQ(Out->T->A->T->K, Tau::Kind::String);
  EXPECT_EQ(Out->T->B->K, Mu::Kind::TyVar); // 'b untouched
}

TEST_F(SubstTest, ComposeRestricted) {
  Subst Inner, Outer;
  Inner.Sr.emplace(r(1), r(2));
  Outer.Sr.emplace(r(2), r(3));
  Outer.Sr.emplace(r(4), r(5)); // outside Inner's domain: dropped
  Subst C = composeRestricted(Outer, Inner, A);
  EXPECT_EQ(C.Sr.size(), 1u);
  EXPECT_EQ(C.apply(r(1)), r(3));
  EXPECT_EQ(C.apply(r(4)), r(4));
}

TEST_F(SubstTest, CoverageHoldsWhenRegionsAreInTheArrowEffect) {
  // Omega |- St : Delta iff Omega |- St(alpha) : frev(Delta(alpha)).
  TyVarCtx Omega, Delta;
  Delta.bind(a(0), ArrowEff(e(1), Effect{AtomicEffect(r(5))}));
  Subst S;
  S.St.emplace(a(0), A.boxed(A.stringTy(), r(5)));
  EXPECT_TRUE(covers(Omega, S, Delta));
}

TEST_F(SubstTest, CoverageFailsWhenRegionsEscapeTheArrowEffect) {
  // Instantiating a spurious variable with (string, r9) whose region the
  // arrow effect does not mention — the paper's unsoundness, rejected.
  TyVarCtx Omega, Delta;
  Delta.bind(a(0), ArrowEff(e(1), Effect{AtomicEffect(r(5))}));
  Subst S;
  S.St.emplace(a(0), A.boxed(A.stringTy(), r(9)));
  EXPECT_FALSE(covers(Omega, S, Delta));
}

TEST_F(SubstTest, CoverageSkipsPlainEntries) {
  TyVarCtx Omega, Delta;
  Delta.bindPlain(a(0));
  Subst S;
  S.St.emplace(a(0), A.boxed(A.stringTy(), r(9)));
  EXPECT_TRUE(covers(Omega, S, Delta));
}

TEST_F(SubstTest, CoverageRequiresMatchingDomains) {
  TyVarCtx Omega, Delta;
  Delta.bindPlain(a(0));
  Subst S; // empty St
  EXPECT_FALSE(covers(Omega, S, Delta));
}

TEST_F(SubstTest, InstanceOfAcceptsAndRejects) {
  // sigma = forall r1 e1 ('a:e2.{}). 'a -e1.{}-> 'a at place r0.
  RScheme Sigma;
  Sigma.QRegions = {r(1)};
  Sigma.QEffects = {e(1)};
  Sigma.Delta.bind(a(0), ArrowEff(e(2), Effect{}));
  Sigma.QEffects.push_back(e(2));
  const Mu *Body =
      A.boxed(A.pairTy(A.tyVar(a(0)), A.intTy()), r(1)); // 'a * int at r1
  Sigma.Body =
      A.arrowTy(A.tyVar(a(0)), ArrowEff(e(1), Effect{}), Body);

  // Instantiate: r1 := r7, e1 := e5.{}, e2 := e6.{r8}, 'a := (string,r8).
  Subst S;
  S.Sr.emplace(r(1), r(7));
  S.Se.emplace(e(1), ArrowEff(e(5), Effect{}));
  S.Se.emplace(e(2), ArrowEff(e(6), Effect{AtomicEffect(r(8))}));
  S.St.emplace(a(0), A.boxed(A.stringTy(), r(8)));

  const Mu *StrMu = A.boxed(A.stringTy(), r(8));
  const Tau *Expected = A.arrowTy(
      StrMu, ArrowEff(e(5), Effect{}),
      A.boxed(A.pairTy(StrMu, A.intTy()), r(7)));
  TyVarCtx Omega;
  std::string Why;
  EXPECT_TRUE(instanceOf(Omega, Sigma, S, Expected, A, &Why)) << Why;

  // Breaking coverage: e2 maps to an arrow effect without r8.
  Subst Bad = S;
  Bad.Se[e(2)] = ArrowEff(e(6), Effect{});
  EXPECT_FALSE(instanceOf(Omega, Sigma, Bad, Expected, A, &Why));
  EXPECT_NE(Why.find("covered"), std::string::npos) << Why;

  // Wrong region domain.
  Subst NoR = S;
  NoR.Sr.clear();
  EXPECT_FALSE(instanceOf(Omega, Sigma, NoR, Expected, A));

  // Wrong result type.
  const Tau *WrongExpected = A.arrowTy(
      StrMu, ArrowEff(e(5), Effect{}),
      A.boxed(A.pairTy(StrMu, A.intTy()), r(9)));
  EXPECT_FALSE(instanceOf(Omega, Sigma, S, WrongExpected, A));
}

TEST_F(SubstTest, SchemeSubstitutionAvoidsCapture) {
  // Applying a substitution that does not touch the bound variables.
  RScheme Sigma;
  Sigma.QRegions = {r(1)};
  Sigma.Body = A.arrowTy(A.intTy(),
                         ArrowEff(e(1), Effect{AtomicEffect(r(9))}),
                         A.intTy());
  Subst S;
  S.Sr.emplace(r(9), r(8));
  RScheme Out = S.apply(Sigma, A);
  EXPECT_EQ(Out.QRegions.size(), 1u);
  EXPECT_TRUE(Out.Body->Nu.Phi.contains(r(8)));
  EXPECT_FALSE(Out.Body->Nu.Phi.contains(r(9)));
}

} // namespace
