//===- tests/bench_programs_test.cpp - Benchmark correctness tests --------===//
//
// Every Figure 9 benchmark compiles under every strategy and spurious
// mode, computes a strategy-independent result, and selected programs
// compute independently verified values.
//
//===----------------------------------------------------------------------===//

#include "bench/Programs.h"

#include "core/Pipeline.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

std::string runOnce(const std::string &Src, Strategy S,
                    SpuriousMode M = SpuriousMode::FreshSecondary) {
  Compiler C;
  CompileOptions Opts;
  Opts.Strat = S;
  Opts.Spurious = M;
  auto Unit = C.compile(Src, Opts);
  if (!Unit) {
    ADD_FAILURE() << "compile failed:\n" << C.diagnostics().str();
    return "";
  }
  rt::RunResult R = C.run(*Unit);
  if (R.Outcome != rt::RunOutcome::Ok) {
    ADD_FAILURE() << "run failed: " << R.Error;
    return "";
  }
  return R.ResultText;
}

class BenchSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchSuiteTest, StrategiesAgree) {
  const bench::BenchProgram *P = bench::findBenchmark(GetParam());
  ASSERT_NE(P, nullptr);
  std::string Rg = runOnce(P->Source, Strategy::Rg);
  ASSERT_FALSE(Rg.empty());
  EXPECT_EQ(runOnce(P->Source, Strategy::RgMinus), Rg) << P->Name;
  EXPECT_EQ(runOnce(P->Source, Strategy::R), Rg) << P->Name;
  EXPECT_EQ(runOnce(P->Source, Strategy::Rg,
                    SpuriousMode::IdentifyWithFun),
            Rg)
      << P->Name;
}

std::vector<std::string> allNames() {
  std::vector<std::string> Out;
  for (const bench::BenchProgram &P : bench::benchmarkSuite())
    Out.push_back(P.Name);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(All, BenchSuiteTest, ::testing::ValuesIn(allNames()),
                         [](const auto &Info) { return Info.param; });

TEST(BenchValues, IndependentlyVerifiedResults) {
  // fib 24 = 46368.
  EXPECT_EQ(runOnce(bench::findBenchmark("fib")->Source, Strategy::Rg),
            "46368");
  // ack(2, n) = 2n + 3.
  EXPECT_EQ(runOnce(bench::findBenchmark("ack")->Source, Strategy::Rg),
            "243");
  // tak(16,10,4) = 5 (Takeuchi; verified against the standard recurrence).
  EXPECT_EQ(runOnce(bench::findBenchmark("tak")->Source, Strategy::Rg),
            "5");
  // 6-queens has 4 solutions.
  EXPECT_EQ(runOnce(bench::findBenchmark("queens")->Source, Strategy::Rg),
            "4");
  // pi(900) = 154 primes below 900.
  EXPECT_EQ(runOnce(bench::findBenchmark("sieve")->Source, Strategy::Rg),
            "154");
  // nrev: 60 iterations of a 90-element reverse: 60 * 90.
  EXPECT_EQ(runOnce(bench::findBenchmark("nrev")->Source, Strategy::Rg),
            "5400");
  // msort: 20 iterations of a 300-element sort: 20 * 300.
  EXPECT_EQ(runOnce(bench::findBenchmark("msort")->Source, Strategy::Rg),
            "6000");
  // qsort: 20 iterations of a 250-element sort: 20 * 250.
  EXPECT_EQ(runOnce(bench::findBenchmark("qsort")->Source, Strategy::Rg),
            "5000");
}

TEST(BenchValues, SortingActuallySorts) {
  // Independent check that msort/qsort order correctly, not just count.
  const char *Check =
      "fun sorted xs = case xs of nil => true | h :: t => "
      "(case t of nil => true | h2 :: _ => h <= h2 andalso sorted t)\n";
  std::string MsortSrc =
      bench::basisSource() + Check +
      "fun split xs = case xs of nil => (nil, nil) | h :: t => "
      "(case t of nil => ([h], nil) | h2 :: t2 => "
      "let val p = split t2 in (h :: #1 p, h2 :: #2 p) end)\n"
      "fun merge xs ys = case xs of nil => ys | h :: t => "
      "(case ys of nil => xs | h2 :: t2 => "
      "if h < h2 then h :: merge t ys else h2 :: merge xs t2)\n"
      "fun msort xs = case xs of nil => nil | h :: t => "
      "(case t of nil => xs | _ :: _ => "
      "let val p = split xs in merge (msort (#1 p)) (msort (#2 p)) end)\n"
      "fun mk n = if n = 0 then nil else (n * 37 mod 11) :: mk (n - 1)\n"
      ";sorted (msort (mk 60))";
  EXPECT_EQ(runOnce(MsortSrc, Strategy::Rg), "true");
}

TEST(BenchMeta, SuiteShape) {
  const auto &Suite = bench::benchmarkSuite();
  EXPECT_GE(Suite.size(), 14u);
  for (const bench::BenchProgram &P : Suite) {
    EXPECT_FALSE(P.Name.empty());
    EXPECT_GT(P.Loc, 0u);
    EXPECT_NE(P.Source.find(bench::basisSource()), std::string::npos);
  }
  EXPECT_EQ(bench::findBenchmark("no-such-bench"), nullptr);
}

TEST(BenchMeta, BasisHasTheExpectedSpuriousFunctions) {
  // Section 4.1: "the MLKit implementation of the entire Standard ML
  // Basis Library contains only three spurious functions" — o,
  // Option.compose and Option.mapPartial. Our mini-basis mirrors that
  // with exactly three: compose, composeOpt (options as lists) and app.
  Compiler C;
  auto Unit = C.compile(bench::basisSource() + ";()");
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();
  EXPECT_EQ(Unit->Spurious.SpuriousFunctions, 3u);
}

} // namespace
