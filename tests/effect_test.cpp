//===- tests/effect_test.cpp - Effect algebra unit tests ------------------===//

#include "region/Effect.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

RegionVar r(uint32_t I) { return RegionVar(I); }
EffectVar e(uint32_t I) { return EffectVar(I); }

TEST(Effect, EmptyAndInsert) {
  Effect Phi;
  EXPECT_TRUE(Phi.isEmpty());
  Phi.insert(AtomicEffect(r(1)));
  Phi.insert(AtomicEffect(r(1))); // duplicate
  Phi.insert(AtomicEffect(e(1)));
  EXPECT_EQ(Phi.size(), 2u);
  EXPECT_TRUE(Phi.contains(r(1)));
  EXPECT_TRUE(Phi.contains(e(1)));
  EXPECT_FALSE(Phi.contains(r(2)));
}

TEST(Effect, RegionAndEffectVarsAreDistinctAtoms) {
  // r1 and e1 share the numeric id but are different atomic effects.
  Effect Phi{AtomicEffect(r(1))};
  EXPECT_TRUE(Phi.contains(r(1)));
  EXPECT_FALSE(Phi.contains(e(1)));
}

TEST(Effect, SetOperations) {
  Effect A{AtomicEffect(r(1)), AtomicEffect(r(2)), AtomicEffect(e(1))};
  Effect B{AtomicEffect(r(2)), AtomicEffect(e(2))};
  Effect U = A.unionWith(B);
  EXPECT_EQ(U.size(), 4u);
  Effect D = A.minus(B);
  EXPECT_EQ(D.size(), 2u);
  EXPECT_TRUE(D.contains(r(1)));
  EXPECT_FALSE(D.contains(r(2)));
  Effect I = A.intersect(B);
  EXPECT_EQ(I.size(), 1u);
  EXPECT_TRUE(I.contains(r(2)));
  EXPECT_FALSE(A.disjointFrom(B));
  EXPECT_TRUE(D.disjointFrom(B));
}

TEST(Effect, SubsetOf) {
  Effect A{AtomicEffect(r(1))};
  Effect B{AtomicEffect(r(1)), AtomicEffect(r(2))};
  EXPECT_TRUE(A.subsetOf(B));
  EXPECT_FALSE(B.subsetOf(A));
  EXPECT_TRUE(Effect().subsetOf(A));
  EXPECT_TRUE(A.subsetOf(A));
}

TEST(Effect, RegionsAndEffectVarsSplit) {
  Effect Phi{AtomicEffect(r(3)), AtomicEffect(e(1)), AtomicEffect(r(1))};
  std::vector<RegionVar> Rs = Phi.regions();
  std::vector<EffectVar> Es = Phi.effectVars();
  ASSERT_EQ(Rs.size(), 2u);
  ASSERT_EQ(Es.size(), 1u);
  EXPECT_EQ(Rs[0], r(1)); // sorted
  EXPECT_EQ(Rs[1], r(3));
  EXPECT_EQ(Es[0], e(1));
}

TEST(ArrowEff, Frev) {
  ArrowEff Nu(e(1), Effect{AtomicEffect(r(1)), AtomicEffect(e(2))});
  Effect F = Nu.frev();
  EXPECT_EQ(F.size(), 3u);
  EXPECT_TRUE(F.contains(e(1)));
  EXPECT_TRUE(F.contains(e(2)));
  EXPECT_TRUE(F.contains(r(1)));
}

TEST(ArrowEff, Equality) {
  ArrowEff A(e(1), Effect{AtomicEffect(r(1))});
  ArrowEff B(e(1), Effect{AtomicEffect(r(1))});
  ArrowEff C(e(1), Effect{});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST(Effect, Printing) {
  EXPECT_EQ(printEffect(Effect()), "{}");
  Effect Phi{AtomicEffect(r(2)), AtomicEffect(e(1))};
  EXPECT_EQ(printEffect(Phi), "{r2,e1}");
  EXPECT_EQ(printRegionVar(RegionVar::global()), "rG");
  EXPECT_EQ(printEffectVar(EffectVar::global()), "eG");
  EXPECT_EQ(printArrowEff(ArrowEff(e(3), Effect{AtomicEffect(r(1))})),
            "e3.{r1}");
}

TEST(Effect, GlobalMarkers) {
  EXPECT_TRUE(RegionVar::global().isGlobal());
  EXPECT_FALSE(r(1).isGlobal());
  EXPECT_FALSE(RegionVar().isValid());
  EXPECT_TRUE(r(0).isValid());
}

} // namespace
