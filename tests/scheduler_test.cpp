//===- tests/scheduler_test.cpp - Dequeue-policy tests --------------------===//
//
// The Scheduler layer: policy objects in isolation (pop order, tie
// breaking, deadline ordering, fair-share deficit accounting, the
// modeled tail-latency claim), the admission stamping contract (cost
// provider consulted exactly once), and end to end through the Service
// (completion order under a deterministically parked worker, drain
// under contention, tenant isolation under a flood). Labelled
// `service;sched` in ctest and expected to be clean under
// -DRML_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

using namespace rml;
using namespace rml::service;

namespace {

//===----------------------------------------------------------------------===//
// Policy objects in isolation.
//===----------------------------------------------------------------------===//

/// Builds a job the way Service::enqueue stamps one.
ScheduledJob job(uint64_t CostKey, uint64_t Seq) {
  ScheduledJob J;
  J.CostKey = CostKey;
  J.Seq = Seq;
  return J;
}

/// A job with an absolute deadline pre-stamped (the unit tests bypass
/// admit() so deadlines are exact, not now-relative).
ScheduledJob djob(uint64_t DeadlineAt, uint64_t Seq) {
  ScheduledJob J;
  J.DeadlineAt = DeadlineAt;
  J.Seq = Seq;
  return J;
}

/// A job carrying a tenant label and a cost, for the fair-share units.
ScheduledJob tjob(const char *Tenant, uint64_t Cost, uint64_t Seq) {
  ScheduledJob J;
  J.Req.Tenant = Tenant;
  J.CostKey = Cost;
  J.Seq = Seq;
  return J;
}

std::vector<uint64_t> popAllSeqs(Scheduler &S) {
  std::vector<uint64_t> Seqs;
  while (!S.empty())
    Seqs.push_back(S.pop().Seq);
  return Seqs;
}

TEST(SchedulerUnit, FifoPopsInSubmissionOrder) {
  auto S = makeScheduler(SchedPolicy::Fifo);
  EXPECT_STREQ(S->policyName(), "fifo");
  EXPECT_TRUE(S->empty());
  // Cost keys are deliberately shuffled: Fifo must ignore them.
  for (uint64_t CostAndSeq : {90u, 10u, 50u, 30u, 70u})
    S->push(job(CostAndSeq, S->size()));
  EXPECT_EQ(S->size(), 5u);
  EXPECT_EQ(popAllSeqs(*S), (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(SchedulerUnit, LjfPopsLongestFirstTiesBySeq) {
  auto S = makeScheduler(SchedPolicy::Ljf);
  EXPECT_STREQ(S->policyName(), "ljf");
  const uint64_t Costs[] = {3, 7, 7, 1, 9};
  for (uint64_t Seq = 0; Seq < 5; ++Seq)
    S->push(job(Costs[Seq], Seq));
  // Descending cost; the two cost-7 jobs resolve to the earlier Seq.
  EXPECT_EQ(popAllSeqs(*S), (std::vector<uint64_t>{4, 1, 2, 0, 3}));
}

TEST(SchedulerUnit, LjfInterleavedPushPop) {
  auto S = makeScheduler(SchedPolicy::Ljf);
  S->push(job(5, 0));
  S->push(job(2, 1));
  EXPECT_EQ(S->pop().Seq, 0u); // 5 beats 2
  S->push(job(9, 2));
  S->push(job(1, 3));
  EXPECT_EQ(S->pop().Seq, 2u); // 9 beats 2 and 1
  EXPECT_EQ(S->pop().Seq, 1u);
  EXPECT_EQ(S->pop().Seq, 3u);
  EXPECT_TRUE(S->empty());
}

TEST(SchedulerUnit, PolicyNamesRoundTrip) {
  EXPECT_STREQ(schedPolicyName(SchedPolicy::Fifo), "fifo");
  EXPECT_STREQ(schedPolicyName(SchedPolicy::Ljf), "ljf");
  EXPECT_STREQ(schedPolicyName(SchedPolicy::Deadline), "deadline");
  EXPECT_STREQ(schedPolicyName(SchedPolicy::FairShare), "fair");
  SchedPolicy P = SchedPolicy::Fifo;
  EXPECT_TRUE(parseSchedPolicy("ljf", P));
  EXPECT_EQ(P, SchedPolicy::Ljf);
  EXPECT_TRUE(parseSchedPolicy("fifo", P));
  EXPECT_EQ(P, SchedPolicy::Fifo);
  EXPECT_TRUE(parseSchedPolicy("deadline", P));
  EXPECT_EQ(P, SchedPolicy::Deadline);
  EXPECT_TRUE(parseSchedPolicy("fair", P));
  EXPECT_EQ(P, SchedPolicy::FairShare);
  P = SchedPolicy::Ljf;
  EXPECT_FALSE(parseSchedPolicy("sjf", P));
  EXPECT_EQ(P, SchedPolicy::Ljf); // unknown names leave Out untouched
  EXPECT_FALSE(parseSchedPolicy("", P));
}

TEST(SchedulerUnit, DeadlinePopsEarliestDeadlineFirstTiesBySeq) {
  auto S = makeScheduler(SchedPolicy::Deadline);
  EXPECT_STREQ(S->policyName(), "deadline");
  S->push(djob(500, 0));
  S->push(djob(100, 1));
  S->push(djob(ScheduledJob::NoDeadline, 2)); // deadline-free: last
  S->push(djob(300, 3));
  S->push(djob(100, 4)); // ties with Seq 1, loses on Seq
  EXPECT_EQ(popAllSeqs(*S), (std::vector<uint64_t>{1, 4, 3, 0, 2}));
}

TEST(SchedulerUnit, DeadlineFreeJobsDegradeToFifo) {
  // All NoDeadline: the Seq tie-break makes EDF collapse to FIFO, so
  // mixing dated and undated traffic never starves the undated side
  // *within* its own class.
  auto S = makeScheduler(SchedPolicy::Deadline);
  for (uint64_t Seq : {2u, 0u, 4u, 1u, 3u})
    S->push(djob(ScheduledJob::NoDeadline, Seq));
  EXPECT_EQ(popAllSeqs(*S), (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(SchedulerUnit, AdmitConsultsTheCostProviderExactlyOnce) {
  auto S = makeScheduler(SchedPolicy::Fifo);
  int Calls = 0;
  S->setCostProvider([&Calls](const Request &R) {
    ++Calls;
    return static_cast<uint64_t>(1000 + R.Source.size());
  });
  ScheduledJob J;
  J.Req.Source = "abc";
  J.Seq = 7;
  S->admit(std::move(J));
  EXPECT_EQ(Calls, 1);
  ScheduledJob Out = S->pop();
  EXPECT_EQ(Out.CostKey, 1003u);
  EXPECT_EQ(Out.DeadlineAt, ScheduledJob::NoDeadline);
  EXPECT_EQ(Calls, 1); // pop must not re-consult

  // A null provider restores the source-length fallback.
  S->setCostProvider(nullptr);
  ScheduledJob K;
  K.Req.Source = "abcd";
  S->admit(std::move(K));
  EXPECT_EQ(S->pop().CostKey, 4u);
  EXPECT_EQ(Calls, 1);
}

TEST(SchedulerUnit, AdmitStampsAbsoluteDeadlines) {
  auto S = makeScheduler(SchedPolicy::Deadline);
  uint64_t Before = traceNowNanos();
  ScheduledJob J;
  J.Req.DeadlineNanos = 1000000000ull;
  S->admit(std::move(J));
  ScheduledJob Out = S->pop();
  EXPECT_GE(Out.DeadlineAt, Before + 1000000000ull);
  EXPECT_LT(Out.DeadlineAt, ScheduledJob::NoDeadline);
}

TEST(SchedulerUnit, FairShareSharesCostAcrossTenants) {
  // Two tenants, equal-cost jobs, quantum = one job's cost: after the
  // first top-up the ring alternates in two-job bursts (serve spends
  // the tenant's credit, the next top-up recredits both).
  auto S = makeScheduler(SchedPolicy::FairShare, /*FairShareQuantum=*/10);
  EXPECT_STREQ(S->policyName(), "fair");
  S->push(tjob("a", 10, 0));
  S->push(tjob("a", 10, 1));
  S->push(tjob("b", 10, 2));
  S->push(tjob("b", 10, 3));
  EXPECT_EQ(popAllSeqs(*S), (std::vector<uint64_t>{0, 2, 3, 1}));
}

TEST(SchedulerUnit, FairShareLetsCheapTenantThroughExpensiveFlood) {
  // The heavy tenant floods first with 4x-cost jobs; the light tenant's
  // whole queue still drains before the heavy tenant's first job,
  // because each DRR round credits both tenants equally and a cheap
  // head job is covered four rounds sooner.
  auto S = makeScheduler(SchedPolicy::FairShare, /*FairShareQuantum=*/1);
  for (uint64_t Seq = 0; Seq < 3; ++Seq)
    S->push(tjob("heavy", 4, Seq));
  for (uint64_t Seq = 3; Seq < 7; ++Seq)
    S->push(tjob("light", 1, Seq));
  EXPECT_EQ(popAllSeqs(*S), (std::vector<uint64_t>{3, 4, 5, 6, 0, 1, 2}));
}

TEST(SchedulerUnit, FairShareDrainedTenantForfeitsDeficit) {
  // Tenant a drains holding 2 units of unspent deficit. If that credit
  // banked across the idle gap, a's next job (cost 2) would be served
  // on the first scan, ahead of b; forfeiting it forces a fresh
  // top-up, where b's earlier ring slot wins.
  auto S = makeScheduler(SchedPolicy::FairShare, /*FairShareQuantum=*/3);
  S->push(tjob("a", 1, 0));
  EXPECT_EQ(S->pop().Seq, 0u); // a spends 1 of a 3-unit round, drains
  S->push(tjob("b", 3, 1));
  S->push(tjob("a", 2, 2));
  EXPECT_EQ(S->pop().Seq, 1u); // no banked credit: b is scanned first
  EXPECT_EQ(S->pop().Seq, 2u);
  EXPECT_TRUE(S->empty());
}

TEST(SchedulerUnit, FairShareSingleTenantIsFifo) {
  auto S = makeScheduler(SchedPolicy::FairShare, /*FairShareQuantum=*/2);
  const uint64_t Costs[] = {5, 1, 9, 3};
  for (uint64_t Seq = 0; Seq < 4; ++Seq)
    S->push(tjob("", Costs[Seq], Seq)); // the anonymous tenant bucket
  EXPECT_EQ(popAllSeqs(*S), (std::vector<uint64_t>{0, 1, 2, 3}));
}

/// A job's completion time when the jobs run in \p Order on \p Workers
/// identical machines, each taken by the earliest-free one (the list
/// schedule both the real thread pool and bench_service's model use).
std::vector<uint64_t> listSchedule(const std::vector<uint64_t> &Order,
                                   const std::vector<uint64_t> &Costs,
                                   unsigned Workers) {
  std::vector<uint64_t> Free(Workers, 0);
  std::vector<uint64_t> Completion(Costs.size(), 0);
  for (uint64_t Idx : Order) {
    auto Slot = std::min_element(Free.begin(), Free.end());
    *Slot += Costs[Idx];
    Completion[Idx] = *Slot;
  }
  return Completion;
}

/// The tail-latency claim behind SchedPolicy::Ljf, pinned machine-
/// independently: on the bench's heterogeneous shape (every 4th job 5x
/// the cost, 8 workers) the Ljf dequeue order strictly improves p95 and
/// max completion time over Fifo. The wall-clock counterpart lives in
/// bench_service, where it needs real cores to show up.
TEST(SchedulerUnit, LjfModeledTailBeatsFifoOnHeterogeneousBatch) {
  std::vector<uint64_t> Costs;
  for (uint64_t I = 0; I < 20; ++I)
    Costs.push_back(I % 4 == 3 ? 5 : 1);

  auto OrderOf = [&](SchedPolicy P) {
    auto S = makeScheduler(P);
    for (uint64_t Seq = 0; Seq < Costs.size(); ++Seq)
      S->push(job(Costs[Seq], Seq));
    return popAllSeqs(*S);
  };
  auto P95 = [](std::vector<uint64_t> C) {
    std::sort(C.begin(), C.end());
    return C[(C.size() - 1) * 95 / 100];
  };

  std::vector<uint64_t> Fifo = listSchedule(OrderOf(SchedPolicy::Fifo),
                                            Costs, 8);
  std::vector<uint64_t> Ljf = listSchedule(OrderOf(SchedPolicy::Ljf),
                                           Costs, 8);
  EXPECT_LT(P95(Ljf), P95(Fifo));
  EXPECT_LT(*std::max_element(Ljf.begin(), Ljf.end()),
            *std::max_element(Fifo.begin(), Fifo.end()));
}

//===----------------------------------------------------------------------===//
// Policies end to end through the Service.
//===----------------------------------------------------------------------===//

/// Parks the single worker inside the blocker job's callback so a batch
/// can be enqueued with nothing draining, then releases it and records
/// the order the remaining callbacks fire in. The park is deterministic:
/// the callback runs on the worker thread after it popped the blocker,
/// so every later submission sits in the scheduler until Release.
std::vector<int> completionOrderOf(ServiceConfig Cfg,
                                   const std::vector<Request> &Reqs) {
  Cfg.Workers = 1;
  Cfg.QueueCapacity = Reqs.size() + 1;
  Service Svc(Cfg);

  std::atomic<bool> Parked{false};
  std::atomic<bool> Release{false};
  Request Blocker;
  Blocker.Source = "0";
  Blocker.Run = false;
  Svc.submit(Blocker, [&](Response) {
    Parked.store(true, std::memory_order_release);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!Parked.load(std::memory_order_acquire))
    std::this_thread::yield();

  std::mutex OrderMutex;
  std::vector<int> Order;
  std::atomic<size_t> Done{0};
  for (size_t I = 0; I < Reqs.size(); ++I) {
    Request Req = Reqs[I];
    Req.Run = false;
    Svc.submit(Req, [&, I](Response R) {
      EXPECT_TRUE(R.CompileOk) << R.Diagnostics;
      {
        std::lock_guard<std::mutex> Lock(OrderMutex);
        Order.push_back(static_cast<int>(I));
      }
      Done.fetch_add(1, std::memory_order_release);
    });
  }
  Release.store(true, std::memory_order_release);
  while (Done.load(std::memory_order_acquire) < Reqs.size())
    std::this_thread::yield();
  return Order;
}

std::vector<int> completionOrder(SchedPolicy Policy,
                                 const std::vector<std::string> &Sources) {
  ServiceConfig Cfg;
  Cfg.Policy = Policy;
  std::vector<Request> Reqs;
  for (const std::string &S : Sources) {
    Request Req;
    Req.Source = S;
    Reqs.push_back(std::move(Req));
  }
  return completionOrderOf(std::move(Cfg), Reqs);
}

/// Distinct source lengths, submitted shortest first. (Each computes a
/// different value so responses are distinguishable.)
std::vector<std::string> gradedSources() {
  return {
      "1 + 1",
      "1 + 1 + 1",
      "1 + 1 + 1 + 1",
      "1 + 1 + 1 + 1 + 1",
      "1 + 1 + 1 + 1 + 1 + 1",
  };
}

TEST(SchedulerService, FifoCompletesInSubmissionOrder) {
  EXPECT_EQ(completionOrder(SchedPolicy::Fifo, gradedSources()),
            (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerService, LjfCompletesLongestSourceFirst) {
  // Submitted shortest-first, completed longest-first.
  EXPECT_EQ(completionOrder(SchedPolicy::Ljf, gradedSources()),
            (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(SchedulerService, LjfBreaksCostTiesBySubmissionOrder) {
  std::vector<std::string> Sources = {"1 + 2", "2 + 3", "3 + 4", "4 + 5"};
  EXPECT_EQ(completionOrder(SchedPolicy::Ljf, Sources),
            (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedulerService, DeadlineCompletesUrgentFirst) {
  // Submitted loosest-deadline first (and one request with none at
  // all); completion runs tightest-first with the undated request last.
  // Hour-scale gaps dwarf the microseconds between admissions, so the
  // now-relative stamping cannot reorder the expectation.
  constexpr uint64_t Hour = 3600ull * 1000 * 1000 * 1000;
  std::vector<Request> Reqs(5);
  Reqs[0].Source = "1 + 1"; // no deadline: sorts after all dated work
  for (size_t I = 1; I < 5; ++I) {
    Reqs[I].Source = "1 + " + std::to_string(I);
    Reqs[I].DeadlineNanos = static_cast<uint64_t>(5 - I) * Hour;
  }
  ServiceConfig Cfg;
  Cfg.Policy = SchedPolicy::Deadline;
  EXPECT_EQ(completionOrderOf(Cfg, Reqs), (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(SchedulerService, FairShareBoundsLightTenantRankUnderFlood) {
  // A heavy tenant floods 24 equal-length sources, then a light tenant
  // submits 4. Under FIFO every light job waits for the whole flood;
  // under FairShare the DRR ring pulls the light queue forward. The
  // bound is on completion *rank*, which a single-core runner measures
  // deterministically (the worker is parked while the batch queues).
  std::vector<Request> Reqs;
  for (int I = 0; I < 24; ++I) {
    Request R;
    R.Source = "0 + " + std::to_string(100 + I); // all length 7
    R.Tenant = "heavy";
    Reqs.push_back(std::move(R));
  }
  for (int I = 0; I < 4; ++I) {
    Request R;
    R.Source = "0 + " + std::to_string(200 + I);
    R.Tenant = "light";
    Reqs.push_back(std::move(R));
  }

  auto WorstLightRank = [&](SchedPolicy Policy) {
    ServiceConfig Cfg;
    Cfg.Policy = Policy;
    Cfg.FairShareQuantum = 1;
    std::vector<int> Order = completionOrderOf(Cfg, Reqs);
    size_t Worst = 0;
    for (size_t Rank = 0; Rank < Order.size(); ++Rank)
      if (Order[Rank] >= 24)
        Worst = Rank;
    return Worst;
  };

  size_t Fair = WorstLightRank(SchedPolicy::FairShare);
  size_t Fifo = WorstLightRank(SchedPolicy::Fifo);
  // FIFO: the light tenant's last job is the last of 28. FairShare:
  // all four light jobs complete within the first 12 pops even though
  // they were submitted behind the entire flood.
  EXPECT_EQ(Fifo, 27u);
  EXPECT_LE(Fair, 12u);
}

TEST(SchedulerService, AllPoliciesDrainUnderEightWorkers) {
  for (SchedPolicy Policy : {SchedPolicy::Fifo, SchedPolicy::Ljf,
                             SchedPolicy::Deadline, SchedPolicy::FairShare}) {
    ServiceConfig Cfg;
    Cfg.Workers = 8;
    Cfg.QueueCapacity = 64;
    Cfg.Policy = Policy;
    Service Svc(Cfg);

    // A mixed batch: every request computes its own index so responses
    // are checkable, with source lengths spread enough that Ljf really
    // reorders (multi-digit additions are longer sources), tenants
    // spread across three buckets, and deadlines on every third request
    // so Deadline and FairShare exercise their real data structures.
    constexpr int N = 48;
    std::vector<std::future<Response>> Futures;
    for (int I = 0; I < N; ++I) {
      Request Req;
      Req.Source = "0 + " + std::to_string(I * 111);
      Req.Run = true;
      Req.Tenant = "t" + std::to_string(I % 3);
      if (I % 3 == 0)
        Req.DeadlineNanos = 3600ull * 1000 * 1000 * 1000;
      Futures.push_back(Svc.submit(std::move(Req)));
    }
    for (int I = 0; I < N; ++I) {
      Response R = Futures[static_cast<size_t>(I)].get();
      EXPECT_EQ(R.Status, RequestOutcome::Ok) << R.Diagnostics;
      EXPECT_EQ(R.ResultText, std::to_string(I * 111)) << "request " << I;
    }

    ServiceStats S = Svc.stats();
    EXPECT_EQ(S.Submitted, static_cast<uint64_t>(N)) << S.Policy;
    EXPECT_EQ(S.Completed, static_cast<uint64_t>(N)) << S.Policy;
    EXPECT_EQ(S.Policy, schedPolicyName(Policy));
    EXPECT_EQ(S.QueueDepth, 0u);
  }
}

} // namespace
