//===- tests/scheduler_test.cpp - Dequeue-policy tests --------------------===//
//
// The Scheduler layer: policy objects in isolation (pop order, tie
// breaking, the modeled tail-latency claim) and end to end through the
// Service (completion order under a deterministically parked worker,
// drain under contention). Labelled `service;sched` in ctest and
// expected to be clean under -DRML_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

using namespace rml;
using namespace rml::service;

namespace {

//===----------------------------------------------------------------------===//
// Policy objects in isolation.
//===----------------------------------------------------------------------===//

/// Builds a job the way Service::enqueue stamps one.
ScheduledJob job(uint64_t CostKey, uint64_t Seq) {
  ScheduledJob J;
  J.CostKey = CostKey;
  J.Seq = Seq;
  return J;
}

std::vector<uint64_t> popAllSeqs(Scheduler &S) {
  std::vector<uint64_t> Seqs;
  while (!S.empty())
    Seqs.push_back(S.pop().Seq);
  return Seqs;
}

TEST(SchedulerUnit, FifoPopsInSubmissionOrder) {
  auto S = makeScheduler(SchedPolicy::Fifo);
  EXPECT_STREQ(S->policyName(), "fifo");
  EXPECT_TRUE(S->empty());
  // Cost keys are deliberately shuffled: Fifo must ignore them.
  for (uint64_t CostAndSeq : {90u, 10u, 50u, 30u, 70u})
    S->push(job(CostAndSeq, S->size()));
  EXPECT_EQ(S->size(), 5u);
  EXPECT_EQ(popAllSeqs(*S), (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(SchedulerUnit, LjfPopsLongestFirstTiesBySeq) {
  auto S = makeScheduler(SchedPolicy::Ljf);
  EXPECT_STREQ(S->policyName(), "ljf");
  const uint64_t Costs[] = {3, 7, 7, 1, 9};
  for (uint64_t Seq = 0; Seq < 5; ++Seq)
    S->push(job(Costs[Seq], Seq));
  // Descending cost; the two cost-7 jobs resolve to the earlier Seq.
  EXPECT_EQ(popAllSeqs(*S), (std::vector<uint64_t>{4, 1, 2, 0, 3}));
}

TEST(SchedulerUnit, LjfInterleavedPushPop) {
  auto S = makeScheduler(SchedPolicy::Ljf);
  S->push(job(5, 0));
  S->push(job(2, 1));
  EXPECT_EQ(S->pop().Seq, 0u); // 5 beats 2
  S->push(job(9, 2));
  S->push(job(1, 3));
  EXPECT_EQ(S->pop().Seq, 2u); // 9 beats 2 and 1
  EXPECT_EQ(S->pop().Seq, 1u);
  EXPECT_EQ(S->pop().Seq, 3u);
  EXPECT_TRUE(S->empty());
}

TEST(SchedulerUnit, PolicyNamesRoundTrip) {
  EXPECT_STREQ(schedPolicyName(SchedPolicy::Fifo), "fifo");
  EXPECT_STREQ(schedPolicyName(SchedPolicy::Ljf), "ljf");
  SchedPolicy P = SchedPolicy::Fifo;
  EXPECT_TRUE(parseSchedPolicy("ljf", P));
  EXPECT_EQ(P, SchedPolicy::Ljf);
  EXPECT_TRUE(parseSchedPolicy("fifo", P));
  EXPECT_EQ(P, SchedPolicy::Fifo);
  P = SchedPolicy::Ljf;
  EXPECT_FALSE(parseSchedPolicy("sjf", P));
  EXPECT_EQ(P, SchedPolicy::Ljf); // unknown names leave Out untouched
  EXPECT_FALSE(parseSchedPolicy("", P));
}

/// A job's completion time when the jobs run in \p Order on \p Workers
/// identical machines, each taken by the earliest-free one (the list
/// schedule both the real thread pool and bench_service's model use).
std::vector<uint64_t> listSchedule(const std::vector<uint64_t> &Order,
                                   const std::vector<uint64_t> &Costs,
                                   unsigned Workers) {
  std::vector<uint64_t> Free(Workers, 0);
  std::vector<uint64_t> Completion(Costs.size(), 0);
  for (uint64_t Idx : Order) {
    auto Slot = std::min_element(Free.begin(), Free.end());
    *Slot += Costs[Idx];
    Completion[Idx] = *Slot;
  }
  return Completion;
}

/// The tail-latency claim behind SchedPolicy::Ljf, pinned machine-
/// independently: on the bench's heterogeneous shape (every 4th job 5x
/// the cost, 8 workers) the Ljf dequeue order strictly improves p95 and
/// max completion time over Fifo. The wall-clock counterpart lives in
/// bench_service, where it needs real cores to show up.
TEST(SchedulerUnit, LjfModeledTailBeatsFifoOnHeterogeneousBatch) {
  std::vector<uint64_t> Costs;
  for (uint64_t I = 0; I < 20; ++I)
    Costs.push_back(I % 4 == 3 ? 5 : 1);

  auto OrderOf = [&](SchedPolicy P) {
    auto S = makeScheduler(P);
    for (uint64_t Seq = 0; Seq < Costs.size(); ++Seq)
      S->push(job(Costs[Seq], Seq));
    return popAllSeqs(*S);
  };
  auto P95 = [](std::vector<uint64_t> C) {
    std::sort(C.begin(), C.end());
    return C[(C.size() - 1) * 95 / 100];
  };

  std::vector<uint64_t> Fifo = listSchedule(OrderOf(SchedPolicy::Fifo),
                                            Costs, 8);
  std::vector<uint64_t> Ljf = listSchedule(OrderOf(SchedPolicy::Ljf),
                                           Costs, 8);
  EXPECT_LT(P95(Ljf), P95(Fifo));
  EXPECT_LT(*std::max_element(Ljf.begin(), Ljf.end()),
            *std::max_element(Fifo.begin(), Fifo.end()));
}

//===----------------------------------------------------------------------===//
// Policies end to end through the Service.
//===----------------------------------------------------------------------===//

/// Parks the single worker inside the blocker job's callback so a batch
/// can be enqueued with nothing draining, then releases it and records
/// the order the remaining callbacks fire in. The park is deterministic:
/// the callback runs on the worker thread after it popped the blocker,
/// so every later submission sits in the scheduler until Release.
std::vector<int> completionOrder(SchedPolicy Policy,
                                 const std::vector<std::string> &Sources) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = Sources.size() + 1;
  Cfg.Policy = Policy;
  Service Svc(Cfg);

  std::atomic<bool> Parked{false};
  std::atomic<bool> Release{false};
  Request Blocker;
  Blocker.Source = "0";
  Blocker.Run = false;
  Svc.submit(Blocker, [&](Response) {
    Parked.store(true, std::memory_order_release);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!Parked.load(std::memory_order_acquire))
    std::this_thread::yield();

  std::mutex OrderMutex;
  std::vector<int> Order;
  std::atomic<size_t> Done{0};
  for (size_t I = 0; I < Sources.size(); ++I) {
    Request Req;
    Req.Source = Sources[I];
    Req.Run = false;
    Svc.submit(Req, [&, I](Response R) {
      EXPECT_TRUE(R.CompileOk) << R.Diagnostics;
      {
        std::lock_guard<std::mutex> Lock(OrderMutex);
        Order.push_back(static_cast<int>(I));
      }
      Done.fetch_add(1, std::memory_order_release);
    });
  }
  Release.store(true, std::memory_order_release);
  while (Done.load(std::memory_order_acquire) < Sources.size())
    std::this_thread::yield();
  return Order;
}

/// Distinct source lengths, submitted shortest first. (Each computes a
/// different value so responses are distinguishable.)
std::vector<std::string> gradedSources() {
  return {
      "1 + 1",
      "1 + 1 + 1",
      "1 + 1 + 1 + 1",
      "1 + 1 + 1 + 1 + 1",
      "1 + 1 + 1 + 1 + 1 + 1",
  };
}

TEST(SchedulerService, FifoCompletesInSubmissionOrder) {
  EXPECT_EQ(completionOrder(SchedPolicy::Fifo, gradedSources()),
            (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerService, LjfCompletesLongestSourceFirst) {
  // Submitted shortest-first, completed longest-first.
  EXPECT_EQ(completionOrder(SchedPolicy::Ljf, gradedSources()),
            (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(SchedulerService, LjfBreaksCostTiesBySubmissionOrder) {
  std::vector<std::string> Sources = {"1 + 2", "2 + 3", "3 + 4", "4 + 5"};
  EXPECT_EQ(completionOrder(SchedPolicy::Ljf, Sources),
            (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedulerService, BothPoliciesDrainUnderEightWorkers) {
  for (SchedPolicy Policy : {SchedPolicy::Fifo, SchedPolicy::Ljf}) {
    ServiceConfig Cfg;
    Cfg.Workers = 8;
    Cfg.QueueCapacity = 64;
    Cfg.Policy = Policy;
    Service Svc(Cfg);

    // A mixed batch: every request computes its own index so responses
    // are checkable, with source lengths spread enough that Ljf really
    // reorders (multi-digit additions are longer sources).
    constexpr int N = 48;
    std::vector<std::future<Response>> Futures;
    for (int I = 0; I < N; ++I) {
      Request Req;
      Req.Source = "0 + " + std::to_string(I * 111);
      Req.Run = true;
      Futures.push_back(Svc.submit(std::move(Req)));
    }
    for (int I = 0; I < N; ++I) {
      Response R = Futures[static_cast<size_t>(I)].get();
      EXPECT_EQ(R.Status, RequestOutcome::Ok) << R.Diagnostics;
      EXPECT_EQ(R.ResultText, std::to_string(I * 111)) << "request " << I;
    }

    ServiceStats S = Svc.stats();
    EXPECT_EQ(S.Submitted, static_cast<uint64_t>(N)) << S.Policy;
    EXPECT_EQ(S.Completed, static_cast<uint64_t>(N)) << S.Policy;
    EXPECT_EQ(S.Policy, schedPolicyName(Policy));
    EXPECT_EQ(S.QueueDepth, 0u);
  }
}

} // namespace
